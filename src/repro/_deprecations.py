"""Warn-exactly-once plumbing for deprecation shims.

A deprecated keyword touched in a tight loop (every chaos-campaign run,
say) must not spam hundreds of identical warnings — the first one is
the signal, the rest are noise that buries real warnings.  Shims call
:func:`warn_once` with a stable key; the first call per process warns,
later calls are free.

Tests that assert on the warnings reset the registry between cases via
the autouse fixture in ``tests/conftest.py``.
"""

from __future__ import annotations

import warnings
from typing import Set

__all__ = ["reset_deprecation_registry", "seen_deprecations", "warn_once"]

_SEEN: Set[str] = set()


def warn_once(key: str, message: str, stacklevel: int = 2) -> bool:
    """Emit ``message`` as a DeprecationWarning the first time ``key`` is seen.

    ``stacklevel`` counts from the *caller* of ``warn_once`` (2 points
    the warning at that caller's caller — usually the user code that
    touched the deprecated surface).  Returns True when a warning was
    actually emitted.
    """
    if key in _SEEN:
        return False
    _SEEN.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel + 1)
    return True


def seen_deprecations() -> Set[str]:
    """The keys warned about so far (a copy; mutation-safe)."""
    return set(_SEEN)


def reset_deprecation_registry() -> None:
    """Forget all emitted warnings (test isolation)."""
    _SEEN.clear()
