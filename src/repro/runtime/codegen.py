"""Code generation and distribution (paper §III-C).

ActivePy compiles the host portion and the CSD function to machine code
(via Cython in the prototype) instead of interpreting them, and patches
the program for shared-memory allocation, CSD function invocation, and
redundant-copy elimination.  The CSD binary is emitted directly into
mapped device memory through the BAR window.

The performance-relevant outcome is the *execution mode ladder* the
paper measures in §V:

* plain CPython: +41% over the C baseline
  (interpreter dispatch +21%, redundant copies +20%),
* Cython-compiled: +20% (dispatch gone, copies remain),
* ActivePy-generated (copies eliminated): ~+1% residual, plus a
  one-time ~0.1 s compilation cost.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List

from ..config import SystemConfig
from ..errors import CodegenError
from ..hw.topology import Machine
from ..lang.program import Program
from .planner import CSD, Plan

#: Modelled size of one line's generated binary (driver + kernel).
_BINARY_BYTES_PER_LINE = 64 * 1024


class ExecutionMode(enum.Enum):
    """How the program's code was produced."""

    #: Hand-written C (the paper's baseline implementations).
    C = "c"
    #: Plain CPython interpretation.
    PYTHON = "python"
    #: Cython-compiled, but still copying across library boundaries.
    CYTHON = "cython"
    #: ActivePy-generated: compiled and copy-eliminated.
    ACTIVEPY = "activepy"

    def time_multiplier(self, config: SystemConfig) -> float:
        """Per-kernel slowdown factor relative to hand-written C."""
        if self is ExecutionMode.C:
            return 1.0
        if self is ExecutionMode.PYTHON:
            return 1.0 + config.interp_dispatch_overhead + config.copy_overhead
        if self is ExecutionMode.CYTHON:
            return 1.0 + config.copy_overhead
        return 1.0 + config.codegen_residual_overhead

    def compile_seconds(self, config: SystemConfig) -> float:
        """One-time code-generation cost before execution starts."""
        if self in (ExecutionMode.CYTHON, ExecutionMode.ACTIVEPY):
            return config.compile_overhead_s
        return 0.0


@dataclass
class CompiledProgram:
    """A program lowered to per-unit binaries under a plan."""

    program: Program
    plan: Plan
    mode: ExecutionMode
    #: The CSD the offloaded lines were compiled for.
    device_name: str = "csd"
    #: name -> device address for binaries installed through the BAR.
    device_binaries: Dict[str, int] = field(default_factory=dict)
    #: Redundant copies eliminated by mutable-memory placement.
    copies_eliminated: int = 0
    compile_seconds: float = 0.0

    @property
    def multiplier(self) -> float:
        return self._multiplier

    def __post_init__(self) -> None:
        if len(self.plan.assignments) != len(self.program):
            raise CodegenError(
                f"plan covers {len(self.plan.assignments)} lines but program "
                f"has {len(self.program)}"
            )
        self._multiplier = None  # set by the generator

    def set_multiplier(self, value: float) -> None:
        self._multiplier = value


class CodeGenerator:
    """Generates and distributes binaries for a planned program."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config

    def generate(
        self,
        machine: Machine,
        program: Program,
        plan: Plan,
        mode: ExecutionMode = ExecutionMode.ACTIVEPY,
        device=None,
    ) -> CompiledProgram:
        """Compile the program, install CSD binaries, charge the clock.

        Every CSD line's binary lands in device memory via the BAR
        window (no extra protocol).  The copy-elimination count is the
        number of inter-line values that now pass by reference instead
        of being re-boxed — one per interior boundary — which is what
        buys the CYTHON→ACTIVEPY step of the overhead ladder.
        ``device`` selects which attached CSD receives the binaries
        (default: the machine's primary device).
        """
        if device is None:
            device = machine.csd
        compiled = CompiledProgram(
            program=program, plan=plan, mode=mode, device_name=device.name
        )
        compile_cost = mode.compile_seconds(self.config)
        if compile_cost > 0:
            machine.simulator.clock.advance(compile_cost, component="host")
        compiled.compile_seconds = compile_cost

        if mode is ExecutionMode.ACTIVEPY:
            compiled.copies_eliminated = max(0, len(program) - 1)

        for index, statement in enumerate(program):
            if plan.assignments[index] != CSD:
                continue
            if mode is ExecutionMode.PYTHON:
                raise CodegenError(
                    "cannot ship interpreted code to the CSD; compile first"
                )
            address = device.bar.install_binary(
                name=f"{program.name}.{statement.name}",
                nbytes=_BINARY_BYTES_PER_LINE,
            )
            compiled.device_binaries[statement.name] = address

        compiled.set_multiplier(mode.time_multiplier(self.config))
        return compiled

    def regenerate_for_host(self, machine: Machine, compiled: CompiledProgram) -> float:
        """Regenerate host code for a migrated task (paper §III-D).

        Returns the code-regeneration cost charged to the clock.
        """
        cost = compiled.mode.compile_seconds(self.config)
        if cost > 0:
            machine.simulator.clock.advance(cost, component="host")
        return cost


def overhead_ladder(config: SystemConfig) -> List[tuple]:
    """The §V runtime-optimisation ladder as (mode, multiplier) rows."""
    return [
        (mode, mode.time_multiplier(config))
        for mode in (
            ExecutionMode.C,
            ExecutionMode.PYTHON,
            ExecutionMode.CYTHON,
            ExecutionMode.ACTIVEPY,
        )
    ]
