"""The ActivePy runtime: the paper's primary contribution.

Pipeline (paper Figure 3): sample the program on scaled inputs, fit
per-line cost curves, plan the host/CSD split with Algorithm 1,
generate code for both units, execute with runtime monitoring, and
migrate the CSD task back to the host when the device degrades.
"""

from .activepy import ActivePy, ActivePyReport
from .codegen import CompiledProgram, ExecutionMode
from .coschedule import CoScheduleResult, coschedule_pair
from .estimator import LineEstimate, build_estimates, net_profit
from .executor import ExecutionResult, PlanExecutor
from .fitting import ComplexityCurve, FittedCurve, fit_curve
from .migration import MigrationEvent
from .monitor import RuntimeMonitor
from .planner import Plan, assign_csd_code
from .profcache import ProfileCache, default_cache
from .profiler import LineProfiler, LineRecord, payload_nbytes
from .sampling import SampleSeries, SamplingPhase, SamplingReport

__all__ = [
    "ActivePy",
    "ActivePyReport",
    "CompiledProgram",
    "CoScheduleResult",
    "coschedule_pair",
    "ExecutionMode",
    "LineEstimate",
    "build_estimates",
    "net_profit",
    "ExecutionResult",
    "PlanExecutor",
    "ComplexityCurve",
    "FittedCurve",
    "fit_curve",
    "MigrationEvent",
    "RuntimeMonitor",
    "Plan",
    "assign_csd_code",
    "ProfileCache",
    "default_cache",
    "LineProfiler",
    "LineRecord",
    "payload_nbytes",
    "SampleSeries",
    "SamplingPhase",
    "SamplingReport",
]
