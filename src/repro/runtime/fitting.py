"""Complexity-curve fitting and extrapolation.

The paper's predictor (§III-A): with four sample runs at exponentially
growing scaling factors, fit each per-line metric against five curves —
O(1), O(n), O(n log n), O(n^2), O(n^3) — pick the closest, and
extrapolate to the raw input size.

Each candidate is an affine model ``y = a * g(n) + b`` with ``g`` the
curve's growth term, solved by least squares; the winner minimises the
relative residual so small-magnitude metrics are not drowned out.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import FittingError


class ComplexityCurve(enum.Enum):
    """The five growth laws ActivePy chooses between."""

    O1 = "O(1)"
    N = "O(n)"
    NLOGN = "O(n log n)"
    N2 = "O(n^2)"
    N3 = "O(n^3)"

    def growth(self, n: float) -> float:
        """Evaluate the curve's growth term at ``n``."""
        if n < 0:
            raise FittingError(f"growth term undefined for negative n={n}")
        if self is ComplexityCurve.O1:
            return 1.0
        if self is ComplexityCurve.N:
            return n
        if self is ComplexityCurve.NLOGN:
            return n * math.log2(n) if n > 1 else 0.0
        if self is ComplexityCurve.N2:
            return n * n
        return n * n * n


@dataclass(frozen=True)
class FittedCurve:
    """A chosen curve with its fitted coefficients and fit quality."""

    curve: ComplexityCurve
    coefficient: float
    intercept: float
    relative_residual: float

    def predict(self, n: float) -> float:
        """Extrapolate the metric to scale ``n`` (clamped at zero)."""
        value = self.coefficient * self.curve.growth(n) + self.intercept
        return max(0.0, value)


#: Preference order when residuals tie: simplest law wins.
_CANDIDATE_ORDER = (
    ComplexityCurve.O1,
    ComplexityCurve.N,
    ComplexityCurve.NLOGN,
    ComplexityCurve.N2,
    ComplexityCurve.N3,
)

#: Residuals within this factor of the best are considered ties.
_TIE_TOLERANCE = 1.02


def fit_curve(ns: Sequence[float], ys: Sequence[float]) -> FittedCurve:
    """Fit observations ``(ns, ys)`` and select the best growth law.

    Requires at least two distinct sample sizes (the paper uses four).
    All-zero observations fit O(1) at zero exactly.
    """
    if len(ns) != len(ys):
        raise FittingError(f"size mismatch: {len(ns)} ns vs {len(ys)} ys")
    if len(ns) < 2:
        raise FittingError("need at least two observations to fit a curve")
    if len(set(ns)) < 2:
        raise FittingError("sample sizes must not all be identical")
    ns_arr = np.asarray(ns, dtype=float)
    ys_arr = np.asarray(ys, dtype=float)
    if np.any(ns_arr <= 0):
        raise FittingError("sample sizes must be positive")
    if np.any(ys_arr < 0):
        raise FittingError("observations must be non-negative")

    if np.all(ys_arr == 0):
        return FittedCurve(ComplexityCurve.O1, 0.0, 0.0, 0.0)

    # Mean of subnormal observations can underflow to zero even though
    # the values are not all zero; fall back so the residual stays finite.
    scale = float(np.mean(ys_arr)) or float(np.max(ys_arr)) or 1.0
    best: FittedCurve | None = None
    for curve in _CANDIDATE_ORDER:
        g = np.array([curve.growth(n) for n in ns_arr])
        design = np.column_stack([g, np.ones_like(g)])
        (a, b), *_ = np.linalg.lstsq(design, ys_arr, rcond=None)
        # A negative slope extrapolates to nonsense at full scale;
        # refit as pure intercept for this candidate.
        if a < 0:
            a = 0.0
            b = float(np.mean(ys_arr))
        predicted = a * g + b
        residual = float(np.sqrt(np.mean((predicted - ys_arr) ** 2))) / scale
        if residual < 1e-12:
            # Quantise numerically perfect fits so the simplest law
            # wins ties instead of float noise picking the winner.
            residual = 0.0
        candidate = FittedCurve(curve, float(a), float(b), residual)
        if best is None or residual < best.relative_residual / _TIE_TOLERANCE:
            best = candidate
    assert best is not None
    return best


def prediction_error(predicted: float, actual: float) -> float:
    """Relative prediction error ``|predicted - actual| / actual``.

    This is the metric behind the paper's "geometric mean of our error
    rate ... is only 9%".  An actual of zero with a zero prediction is
    a perfect hit; a nonzero prediction against zero is infinite error.
    """
    if actual == 0:
        return 0.0 if predicted == 0 else math.inf
    return abs(predicted - actual) / abs(actual)
