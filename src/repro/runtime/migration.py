"""Task migration (paper §III-D).

When the re-estimated CSD time exceeds the cost of finishing on the
host, ActivePy breaks the CSD code at the end of the currently
executing Python line, saves the local variables into the shared memory
space, regenerates machine code for the host, and resumes at the
breakpoint.  Thanks to the single address space, the large intermediate
values do *not* move: they stay in device DRAM and the host accesses
them remotely over the BAR mapping — that remote access, plus the code
regeneration, is the ~8% overhead the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SystemConfig
from ..errors import MigrationError
from ..hw.topology import Machine

#: Modelled size of a task's scalar locals (loop indices, accumulators).
_LOCALS_BYTES = 64 * 1024


@dataclass(frozen=True)
class MigrationEvent:
    """A completed host-ward migration, for reports and tests."""

    line_index: int
    line_name: str
    #: Chunk boundary (dynamic line instance) the task broke at.
    chunk: int
    sim_time: float
    reason: str
    #: Total simulated seconds the migration itself consumed.
    cost_seconds: float
    #: Remaining-CSD-time estimate that justified the move.
    projected_device_seconds: float
    #: Host-side estimate (including this cost) that won.
    projected_host_seconds: float
    #: Chunk the host actually resumed at, read back from the BAR
    #: checkpoint record (equals ``chunk`` unless the newest record was
    #: torn and the previous generation won).  -1 when checkpointing is
    #: disabled and the host-side counter was trusted instead.
    resume_chunk: int = -1


def migration_cost_estimate(
    config: SystemConfig,
    remaining_host_compute_s: float,
    remaining_storage_bytes: float,
    live_input_bytes: float,
) -> float:
    """Predict the total cost of migrating and finishing on the host.

    Components: code regeneration, checkpointing locals, the remaining
    compute at host speed, the remaining stored data over the host's
    normal storage path, and the live intermediate data re-read from
    device DRAM over the (slower) remote-access path.
    """
    if remaining_host_compute_s < 0 or remaining_storage_bytes < 0 or live_input_bytes < 0:
        raise MigrationError("remaining-work estimates must be non-negative")
    verify_s = 0.0
    if config.integrity_enabled:
        # The host digest-checks the locals it reads back (repro.integrity).
        verify_s = _LOCALS_BYTES / config.integrity_verify_bandwidth
    return (
        config.compile_overhead_s
        + config.migration_state_cost_s
        + _LOCALS_BYTES / config.bw_d2h
        + verify_s
        + remaining_host_compute_s
        + remaining_storage_bytes / config.bw_host_storage
        + live_input_bytes / config.bw_remote_access
    )


def perform_migration(
    machine: Machine,
    line_index: int,
    line_name: str,
    chunk: int,
    reason: str,
    projected_device_seconds: float,
    projected_host_seconds: float,
    resume_chunk: int = -1,
) -> MigrationEvent:
    """Execute the mechanical part of a migration; charge the clock.

    Regenerates host code (compile cost), saves locals through the
    device-to-host link, and returns the event record.  The caller —
    the executor — then switches the remaining work to the host and
    routes live-data reads over the remote-access link, resuming at
    ``resume_chunk`` as validated against the BAR checkpoint record
    (:mod:`repro.runtime.checkpoint`) rather than trusting possibly
    torn shared state.
    """
    start = machine.simulator.now
    config = machine.config
    machine.simulator.clock.advance(config.compile_overhead_s, component="migration")
    machine.simulator.clock.advance(
        config.migration_state_cost_s, component="migration"
    )
    machine.d2h_link.transfer(_LOCALS_BYTES)
    if config.integrity_enabled:
        # Digest-check the checkpointed locals the host just read back.
        machine.simulator.clock.advance(
            _LOCALS_BYTES / config.integrity_verify_bandwidth,
            component="integrity",
        )
        if machine.obs.enabled:
            machine.obs.metrics.counter("integrity.verified_bytes").inc(
                _LOCALS_BYTES
            )
    cost = machine.simulator.now - start
    if machine.obs.enabled:
        machine.obs.metrics.counter("migration.count").inc()
        machine.obs.metrics.counter("migration.cost_seconds").inc(cost)
    return MigrationEvent(
        line_index=line_index,
        line_name=line_name,
        chunk=chunk,
        sim_time=machine.simulator.now,
        reason=reason,
        cost_seconds=cost,
        projected_device_seconds=projected_device_seconds,
        projected_host_seconds=projected_host_seconds,
        resume_chunk=resume_chunk,
    )
