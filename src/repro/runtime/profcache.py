"""Content-addressed cache for sampling and curve-fitting results.

Profiling is the wall-clock hot spot of :meth:`ActivePy.run`: four
sample runs execute every kernel for real, and the curve fitter solves
twenty least-squares problems per program.  The *outcome* of all that
work is a pure function of (program source, workload configuration,
machine configuration) — so it can be content-addressed and reused.

The cache key is a SHA-256 over a canonical fingerprint of

* the **program**: per-statement name/chunks/live_vars, the kernel's
  source (closure cells and defaults included, NumPy arrays hashed by
  content), and the cost callables — fingerprinted both by source and
  by *probing* them at sentinel record counts, because two closures
  from the same factory (``per_record(8.0)`` vs ``per_record(16.0)``)
  share their source but not their behaviour;
* the **dataset**: name, sizes, record bytes, and the builder's source;
* the **machine**: the full :class:`~repro.config.SystemConfig`;
* the **engine**: a digest over every ``repro`` source file, so *any*
  code change in this package invalidates every entry.  That is
  deliberately conservative — a stale entry must never be served, and
  extra misses only cost a re-profile.

Entries live under ``.repro_cache/profiles/<key>.json`` (override the
root with ``REPRO_CACHE_DIR``; disable entirely with
``REPRO_PROFCACHE=0``) with a checksum over the payload; a corrupted or
truncated file is ignored with a warning and recomputed, never served.
Writes are atomic (tempfile + ``os.replace``), so concurrent writers —
e.g. :mod:`repro.parallel` campaign workers — race benignly: the key is
content-addressed, every writer writes the same bytes.

The cached :class:`~repro.runtime.sampling.SamplingReport` round-trips
floats through JSON ``repr`` exactly, so a cache hit is **bit-identical**
to a fresh profile: same ``sampling_seconds``, same fitted curves, same
downstream plan (asserted by ``tests/test_profcache.py`` on every
rotation workload).  Anything the fingerprinter cannot see through (a
kernel that is not a plain Python function, an unhashable closure cell)
makes the run *uncacheable* — a miss that is never stored.
"""

from __future__ import annotations

import enum
import hashlib
import json
import os
import tempfile
import types
import warnings
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

from ..config import SystemConfig
from ..lang.dataset import Dataset
from ..lang.program import Program, Statement
from .fitting import ComplexityCurve, FittedCurve
from .sampling import LineFits, SampleSeries, SamplingReport

__all__ = ["ProfileCache", "default_cache", "fingerprint_run"]

#: Bumped whenever the payload layout or fingerprint recipe changes.
_SCHEMA_VERSION = 1

_ENV_CACHE_DIR = "REPRO_CACHE_DIR"
_ENV_DISABLE = "REPRO_PROFCACHE"
_DEFAULT_ROOT = ".repro_cache"

#: Sentinel record counts cost callables are probed at.  Probing is
#: what distinguishes closures that share source but capture different
#: constants; the spread of magnitudes also separates affine families.
_COST_PROBES = (1.0, 2.0, 17.0, 1024.0, 31337.0)

#: Recursion guard for closure-cell fingerprinting.
_MAX_DEPTH = 8


class _Unfingerprintable(Exception):
    """A value the fingerprinter refuses to guess about."""


def _repro_version() -> str:
    # Imported lazily: this module loads while ``repro/__init__`` is
    # still executing, before ``__version__`` is bound.
    from .. import __version__

    return __version__


# --- fingerprinting ---------------------------------------------------------

def _value_token(value: Any, depth: int = 0) -> Any:
    """A canonical JSON-able token for one captured value."""
    if depth > _MAX_DEPTH:
        raise _Unfingerprintable("value nesting too deep")
    if value is None or isinstance(value, (bool, int, float, str)):
        return repr(value)
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return f"np:{value!r}"
    if isinstance(value, np.ndarray):
        digest = hashlib.sha256(
            np.ascontiguousarray(value).tobytes()
        ).hexdigest()[:16]
        return f"ndarray:{value.dtype}:{value.shape}:{digest}"
    if isinstance(value, enum.Enum):
        return f"enum:{type(value).__name__}:{value.value!r}"
    if isinstance(value, (tuple, list)):
        return [type(value).__name__] + [
            _value_token(item, depth + 1) for item in value
        ]
    if isinstance(value, dict):
        return {
            str(key): _value_token(item, depth + 1)
            for key, item in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(value, types.FunctionType):
        return _callable_token(value, depth + 1)
    raise _Unfingerprintable(
        f"cannot fingerprint a {type(value).__name__} value"
    )


def _callable_token(fn: Any, depth: int = 0) -> Dict[str, Any]:
    """Fingerprint a plain Python function: source, defaults, closure."""
    if not isinstance(fn, types.FunctionType):
        raise _Unfingerprintable(
            f"kernel/cost callable is a {type(fn).__name__}, "
            f"not a plain function"
        )
    try:
        import inspect

        source = inspect.getsource(fn)
    except (OSError, TypeError):
        # Defined in a REPL or exec'd string: fall back to bytecode.
        source = fn.__code__.co_code.hex() + "|" + repr(fn.__code__.co_consts)
    return {
        "module": fn.__module__,
        "module_digest": _module_digest(fn.__module__),
        "qualname": fn.__qualname__,
        "source": source,
        "defaults": [
            _value_token(value, depth + 1)
            for value in (fn.__defaults__ or ())
        ],
        "closure": [
            _value_token(cell.cell_contents, depth + 1)
            for cell in (fn.__closure__ or ())
        ],
    }


_MODULE_DIGESTS: Dict[str, str] = {}


def _module_digest(module_name: str) -> str:
    """Content digest of the module file a function is defined in.

    Covers edits to same-file helpers the function calls but does not
    close over.  Modules without a source file (builtins, frozen)
    digest to a constant.
    """
    cached = _MODULE_DIGESTS.get(module_name)
    if cached is not None:
        return cached
    import sys

    module = sys.modules.get(module_name)
    path = getattr(module, "__file__", None)
    if path is None:
        digest = "no-source"
    else:
        try:
            digest = hashlib.sha256(
                Path(path).read_bytes()
            ).hexdigest()[:16]
        except OSError:
            digest = "unreadable"
    _MODULE_DIGESTS[module_name] = digest
    return digest


_ENGINE_DIGEST: Optional[str] = None


def _engine_digest() -> str:
    """One digest over every source file of the ``repro`` package.

    Any code change anywhere in the package invalidates the whole
    cache.  Computed once per process (~a millisecond for ~100 files).
    """
    global _ENGINE_DIGEST
    if _ENGINE_DIGEST is None:
        package_root = Path(__file__).resolve().parents[1]
        hasher = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            hasher.update(str(path.relative_to(package_root)).encode("utf-8"))
            try:
                hasher.update(path.read_bytes())
            except OSError:
                hasher.update(b"unreadable")
        _ENGINE_DIGEST = hasher.hexdigest()[:16]
    return _ENGINE_DIGEST


def _cost_token(fn: Any, depth: int = 0) -> Dict[str, Any]:
    """Source fingerprint plus behavioural probes of one cost callable."""
    token = _callable_token(fn, depth)
    try:
        token["probes"] = [repr(float(fn(n))) for n in _COST_PROBES]
    except Exception as exc:
        raise _Unfingerprintable(f"cost callable failed a probe: {exc}")
    return token


def _statement_token(statement: Statement) -> Dict[str, Any]:
    return {
        "name": statement.name,
        "chunks": statement.chunks,
        "live_vars": list(statement.live_vars),
        "kernel": _callable_token(statement.kernel),
        "instructions": _cost_token(statement.instructions),
        "output_bytes": _cost_token(statement.output_bytes),
        "storage_bytes": _cost_token(statement.storage_bytes),
    }


def fingerprint_run(
    program: Program, dataset: Dataset, config: SystemConfig
) -> Optional[str]:
    """The cache key of one (program, dataset, config) run, or ``None``.

    ``None`` means *uncacheable*: some ingredient (an exotic kernel
    object, an opaque closure cell) cannot be fingerprinted reliably,
    so the run must always profile fresh.
    """
    import dataclasses

    try:
        fingerprint = {
            "schema": _SCHEMA_VERSION,
            "repro_version": _repro_version(),
            "engine": _engine_digest(),
            "program": {
                "name": program.name,
                "statements": [_statement_token(s) for s in program],
            },
            "dataset": {
                "name": dataset.name,
                "n_records": dataset.n_records,
                "record_bytes": repr(dataset.record_bytes),
                "full_records": dataset.full_records,
                "builder": _callable_token(dataset.builder),
            },
            "config": {
                key: repr(value)
                for key, value in sorted(
                    dataclasses.asdict(config).items(),
                    key=lambda kv: str(kv[0]),
                )
            },
        }
        canonical = json.dumps(fingerprint, sort_keys=True, allow_nan=False)
    except (_Unfingerprintable, TypeError, ValueError):
        return None
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# --- SamplingReport (de)serialisation --------------------------------------

def _report_to_jsonable(report: SamplingReport) -> Dict[str, Any]:
    return {
        "sampling_seconds": report.sampling_seconds,
        "factors": list(report.factors),
        "series": [
            {
                "index": s.index,
                "name": s.name,
                "n_values": list(s.n_values),
                "compute_seconds": list(s.compute_seconds),
                "data_access_seconds": list(s.data_access_seconds),
                "input_bytes": list(s.input_bytes),
                "output_bytes": list(s.output_bytes),
                "storage_bytes": list(s.storage_bytes),
            }
            for s in report.series
        ],
        "fits": [
            {
                "index": f.index,
                "name": f.name,
                **{
                    metric: _curve_to_jsonable(getattr(f, metric))
                    for metric in (
                        "compute", "data_access", "output_bytes",
                        "storage_bytes",
                    )
                },
            }
            for f in report.fits
        ],
    }


def _curve_to_jsonable(curve: FittedCurve) -> Dict[str, Any]:
    return {
        "curve": curve.curve.value,
        "coefficient": curve.coefficient,
        "intercept": curve.intercept,
        "relative_residual": curve.relative_residual,
    }


def _curve_from_jsonable(payload: Dict[str, Any]) -> FittedCurve:
    return FittedCurve(
        curve=ComplexityCurve(payload["curve"]),
        coefficient=float(payload["coefficient"]),
        intercept=float(payload["intercept"]),
        relative_residual=float(payload["relative_residual"]),
    )


def _report_from_jsonable(payload: Dict[str, Any]) -> SamplingReport:
    series = [
        SampleSeries(
            index=int(s["index"]),
            name=str(s["name"]),
            n_values=[int(n) for n in s["n_values"]],
            compute_seconds=[float(v) for v in s["compute_seconds"]],
            data_access_seconds=[float(v) for v in s["data_access_seconds"]],
            input_bytes=[float(v) for v in s["input_bytes"]],
            output_bytes=[float(v) for v in s["output_bytes"]],
            storage_bytes=[float(v) for v in s["storage_bytes"]],
        )
        for s in payload["series"]
    ]
    fits = [
        LineFits(
            index=int(f["index"]),
            name=str(f["name"]),
            compute=_curve_from_jsonable(f["compute"]),
            data_access=_curve_from_jsonable(f["data_access"]),
            output_bytes=_curve_from_jsonable(f["output_bytes"]),
            storage_bytes=_curve_from_jsonable(f["storage_bytes"]),
        )
        for f in payload["fits"]
    ]
    return SamplingReport(
        series=series,
        fits=fits,
        sampling_seconds=float(payload["sampling_seconds"]),
        factors=tuple(payload["factors"]),
    )


def _checksum(payload: Dict[str, Any]) -> str:
    canonical = json.dumps(payload, sort_keys=True, allow_nan=False)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# --- the cache --------------------------------------------------------------

class ProfileCache:
    """A directory of content-addressed sampling reports.

    Parameters
    ----------
    root:
        Cache directory; defaults to ``$REPRO_CACHE_DIR`` or
        ``.repro_cache`` under the current working directory.

    Counters (``hits``/``misses``/``invalidations``/``uncacheable``)
    accumulate per instance; :class:`~repro.runtime.activepy.ActivePy`
    republishes their deltas through ``repro.obs``.
    """

    def __init__(self, root: Optional[Path] = None) -> None:
        if root is None:
            root = Path(os.environ.get(_ENV_CACHE_DIR, _DEFAULT_ROOT))
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.uncacheable = 0
        self.plan_hits = 0
        self.plan_misses = 0

    # --- key --------------------------------------------------------------

    def key_for(
        self, program: Program, dataset: Dataset, config: SystemConfig
    ) -> Optional[str]:
        """Fingerprint a run; ``None`` marks it uncacheable."""
        key = fingerprint_run(program, dataset, config)
        if key is None:
            self.uncacheable += 1
        return key

    def _path(self, key: str) -> Path:
        return self.root / "profiles" / f"{key}.json"

    @staticmethod
    def plan_key(base_key: str, options_token: str) -> str:
        """The plan-cache key for a run key plus search knobs.

        Derived from the *sampling* fingerprint (so anything that
        invalidates a profile invalidates its plans) salted with the
        search options that shaped the plan — a beam-limited search and
        an exhaustive one may legitimately disagree.
        """
        return hashlib.sha256(
            f"{base_key}:plan:{options_token}".encode("utf-8")
        ).hexdigest()

    def _plan_path(self, key: str) -> Path:
        return self.root / "plans" / f"{key}.json"

    # --- read -------------------------------------------------------------

    def get(self, key: str) -> Optional[SamplingReport]:
        """The cached report for ``key``, or ``None`` on a miss.

        A present-but-unusable entry (corrupted JSON, checksum or
        schema mismatch) is a *miss plus invalidation*: the entry is
        dropped with a warning and the caller re-profiles.
        """
        path = self._path(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError as exc:
            self._invalidate(path, f"unreadable ({exc})")
            return None
        try:
            envelope = json.loads(raw)
            if envelope.get("schema_version") != _SCHEMA_VERSION:
                raise ValueError(
                    f"schema {envelope.get('schema_version')!r} != "
                    f"{_SCHEMA_VERSION}"
                )
            if envelope.get("key") != key:
                raise ValueError("key mismatch (renamed or copied entry)")
            payload = envelope["payload"]
            if envelope.get("checksum") != _checksum(payload):
                raise ValueError("checksum mismatch (truncated or edited)")
            report = _report_from_jsonable(payload)
        except Exception as exc:  # noqa: BLE001 — any damage means re-profile
            self._invalidate(path, str(exc))
            return None
        self.hits += 1
        return report

    def get_plan(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached plan-search payload for ``key``, or ``None``.

        Plan entries share the profile entries' envelope (schema, key,
        checksum) and damage policy: anything unusable is dropped and
        recomputed, never served.  The payload is the JSON view of a
        :class:`~repro.runtime.plansearch.SearchReport`.
        """
        path = self._plan_path(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            self.plan_misses += 1
            return None
        except OSError as exc:
            self._invalidate(path, f"unreadable ({exc})", plan=True)
            return None
        try:
            envelope = json.loads(raw)
            if envelope.get("schema_version") != _SCHEMA_VERSION:
                raise ValueError(
                    f"schema {envelope.get('schema_version')!r} != "
                    f"{_SCHEMA_VERSION}"
                )
            if envelope.get("key") != key:
                raise ValueError("key mismatch (renamed or copied entry)")
            payload = envelope["payload"]
            if envelope.get("checksum") != _checksum(payload):
                raise ValueError("checksum mismatch (truncated or edited)")
        except Exception as exc:  # noqa: BLE001 — any damage means re-search
            self._invalidate(path, str(exc), plan=True)
            return None
        self.plan_hits += 1
        return payload

    def put_plan(self, key: str, payload: Dict[str, Any]) -> bool:
        """Persist a plan-search payload under ``key``; atomic, best-effort."""
        try:
            envelope = {
                "schema_version": _SCHEMA_VERSION,
                "repro_version": _repro_version(),
                "key": key,
                "checksum": _checksum(payload),
                "payload": payload,
            }
            text = json.dumps(envelope, sort_keys=True, allow_nan=False)
        except (TypeError, ValueError):
            return False
        return self._write_atomic(self._plan_path(key), key, text)

    def _invalidate(self, path: Path, reason: str, plan: bool = False) -> None:
        warnings.warn(
            f"repro profile cache: ignoring corrupted entry "
            f"{path.name}: {reason}",
            RuntimeWarning,
            stacklevel=3,
        )
        self.invalidations += 1
        if plan:
            self.plan_misses += 1
        else:
            self.misses += 1
        try:
            path.unlink()
        except OSError:
            pass

    # --- write ------------------------------------------------------------

    def put(self, key: str, report: SamplingReport) -> bool:
        """Persist ``report`` under ``key``; best-effort, atomic.

        Returns False (without raising) when the report cannot be
        serialised or the filesystem refuses the write — caching is an
        optimisation, never a failure mode.
        """
        try:
            payload = _report_to_jsonable(report)
            envelope = {
                "schema_version": _SCHEMA_VERSION,
                "repro_version": _repro_version(),
                "key": key,
                "checksum": _checksum(payload),
                "payload": payload,
            }
            text = json.dumps(envelope, sort_keys=True, allow_nan=False)
        except (TypeError, ValueError):
            return False
        return self._write_atomic(self._path(key), key, text)

    @staticmethod
    def _write_atomic(path: Path, key: str, text: str) -> bool:
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                prefix=f".{key[:16]}.", suffix=".tmp", dir=path.parent
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(text)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        return True

    # --- maintenance ------------------------------------------------------

    def clear(self) -> int:
        """Delete every cached entry; returns how many were removed."""
        removed = 0
        for subdir in ("profiles", "plans"):
            directory = self.root / subdir
            if directory.is_dir():
                for path in directory.glob("*.json"):
                    try:
                        path.unlink()
                        removed += 1
                    except OSError:
                        pass
        return removed

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "uncacheable": self.uncacheable,
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
        }

    def __repr__(self) -> str:
        return f"ProfileCache(root={str(self.root)!r}, {self.stats()})"


_DEFAULT_CACHE: Optional[ProfileCache] = None
_DEFAULT_CACHE_KEY: Optional[str] = None


def default_cache() -> Optional[ProfileCache]:
    """The process-wide cache, or ``None`` when disabled by environment.

    ``REPRO_PROFCACHE=0`` (or ``off``/``false``/``no``) disables
    caching entirely; ``REPRO_CACHE_DIR`` relocates it.  The singleton
    is rebuilt if either variable changes mid-process (tests do this).
    """
    global _DEFAULT_CACHE, _DEFAULT_CACHE_KEY
    toggle = os.environ.get(_ENV_DISABLE, "1").strip().lower()
    if toggle in ("0", "off", "false", "no"):
        return None
    root = os.environ.get(_ENV_CACHE_DIR, _DEFAULT_ROOT)
    if _DEFAULT_CACHE is None or _DEFAULT_CACHE_KEY != root:
        _DEFAULT_CACHE = ProfileCache(Path(root))
        _DEFAULT_CACHE_KEY = root
    return _DEFAULT_CACHE


def sampling_report_to_jsonable(report: SamplingReport) -> Dict[str, Any]:
    """Public serialisation hook (the cache's own payload layout)."""
    return _report_to_jsonable(report)


def sampling_report_from_jsonable(payload: Dict[str, Any]) -> SamplingReport:
    """Inverse of :func:`sampling_report_to_jsonable` (exact floats)."""
    return _report_from_jsonable(payload)
