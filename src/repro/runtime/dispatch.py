"""CSD function invocation over NVMe-style queue pairs (paper §III-C0b).

The host writes a call request into the submission queue mapped in
device memory and rings the doorbell; the CSE fetches requests whenever
it is free.  At the end of every executed line the device posts a
status update — execution rate (IPC) and progress — to the completion
queue, and checks whether the host raised anything it must handle with
high priority.  The update costs a small interconnect message, which is
why the paper can claim the status mechanism adds "very little
overhead".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import DispatchError
from ..hw.topology import Machine
from ..storage.nvme import Completion


@dataclass(frozen=True)
class StatusUpdate:
    """One per-line status report from the CSD code."""

    line_name: str
    chunk: int
    ipc: float
    progress: float  # fraction of this line's dynamic instances done
    high_priority_pending: bool


class CallQueueDispatcher:
    """Host-side driver for invoking and tracking CSD functions.

    ``device`` selects which attached CSD's queue pair carries the
    calls (default: the machine's primary device).
    """

    def __init__(self, machine: Machine, device=None) -> None:
        self.machine = machine
        self.device = device if device is not None else machine.csd
        self.queue_pair = self.device.queue_pair
        self.invocations = 0
        self.status_updates = 0

    # --- invocation ---------------------------------------------------------

    def invoke(self, line_name: str, binary_address: Optional[int]) -> int:
        """Submit a CSD function call and ring the doorbell.

        The CSE fetches the request immediately when idle (our executor
        runs one offloaded task at a time).  Returns the command id.
        """
        if binary_address is None:
            raise DispatchError(
                f"line {line_name!r} has no installed device binary"
            )
        command_id = self.queue_pair.sq.submit(
            opcode="exec", payload={"line": line_name, "binary": binary_address}
        )
        self.machine.d2h_link.message()  # doorbell write
        command = self.queue_pair.sq.fetch()
        if command.command_id != command_id:
            raise DispatchError("queue pair delivered commands out of order")
        self.invocations += 1
        return command_id

    def complete(self, command_id: int, status: str = "ok") -> None:
        """Device side: post the final completion for a call."""
        self.queue_pair.cq.post(Completion(command_id=command_id, status=status))

    def reap_completion(self, command_id: int) -> Completion:
        """Host side: wait for the final completion of a call."""
        completion = self.queue_pair.cq.reap()
        if completion.command_id != command_id:
            raise DispatchError(
                f"expected completion for command {command_id}, "
                f"got {completion.command_id}"
            )
        return completion

    # --- status updates --------------------------------------------------------

    def post_status(self, update: StatusUpdate) -> None:
        """Device side: publish a per-line status update.

        Costs one small message on the device-to-host path.
        """
        self.queue_pair.cq.post(Completion(command_id=-1, status="status", payload=update))
        self.machine.d2h_link.message()
        self.status_updates += 1

    def drain_status(self) -> List[StatusUpdate]:
        """Host side: collect all pending status updates."""
        updates: List[StatusUpdate] = []
        retained: List[Completion] = []
        for completion in self.queue_pair.cq.drain():
            if completion.status == "status":
                updates.append(completion.payload)
            else:
                retained.append(completion)
        # Final completions reaped here out of order would be lost;
        # repost them for reap_completion.
        for completion in retained:
            self.queue_pair.cq.post(completion)
        return updates
