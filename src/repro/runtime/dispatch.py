"""CSD function invocation over NVMe-style queue pairs (paper §III-C0b).

The host writes a call request into the submission queue mapped in
device memory and rings the doorbell; the CSE fetches requests whenever
it is free.  At the end of every executed line the device posts a
status update — execution rate (IPC) and progress — to the completion
queue, and checks whether the host raised anything it must handle with
high priority.  The update costs a small interconnect message, which is
why the paper can claim the status mechanism adds "very little
overhead".

The dispatcher is also where the host survives a misbehaving device
(:mod:`repro.faults`): a full submission queue is waited out in sim
time with a bounded back-pressure window, a missing completion is
retried with exponential backoff until a per-command deadline budget is
exhausted, duplicate completions from a retry race are dropped
idempotently, and a device that never answers is declared dead with
:class:`~repro.errors.DeviceLostError`.  All of these knobs live on
:class:`~repro.config.SystemConfig`; every recovery action is recorded
on the shared :class:`~repro.faults.FaultLog`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import DeadlineError, DeviceLostError, DispatchError
from ..faults import FaultLog
from ..hw.topology import Machine
from ..storage.nvme import Completion


@dataclass(frozen=True, slots=True)
class StatusUpdate:
    """One per-line status report from the CSD code."""

    line_name: str
    chunk: int
    ipc: float
    progress: float  # fraction of this line's dynamic instances done
    high_priority_pending: bool


class CallQueueDispatcher:
    """Host-side driver for invoking and tracking CSD functions.

    ``device`` selects which attached CSD's queue pair carries the
    calls (default: the machine's primary device).  ``fault_log``
    receives a record of every recovery action; by default each
    dispatcher keeps its own log.
    """

    def __init__(self, machine: Machine, device=None, fault_log: Optional[FaultLog] = None) -> None:
        self.machine = machine
        self.device = device if device is not None else machine.csd
        self.queue_pair = self.device.queue_pair
        self.fault_log = fault_log if fault_log is not None else FaultLog()
        self.obs = machine.obs
        self._m_sq_depth = f"nvme.{self.device.name}.sq_depth"
        self._m_cq_depth = f"nvme.{self.device.name}.cq_depth"
        self.invocations = 0
        self.status_updates = 0
        self.retries = 0
        self.duplicates_dropped = 0
        self.backpressure_waits = 0
        self._completed_ids: set = set()
        self._abandoned_ids: set = set()
        #: Absolute sim time an armed completion delay lifts (the entry
        #: is in the queue but not yet visible to the host).
        self._cq_visible_at: Optional[float] = None

    # --- sim-time waiting ---------------------------------------------------

    def _wait(self, seconds: float) -> None:
        """Block the host for ``seconds`` of sim time, firing due events.

        Waiting through the simulator (rather than a bare clock advance)
        lets background events — a scheduled CSE reset, a stall window
        expiring — take effect while the host is parked.  The parked
        time is queueing delay, attributed to the NVMe queues.
        """
        simulator = self.machine.simulator
        with self.obs.attr_scope("nvme"):
            simulator.run_until(simulator.now + seconds)

    # --- invocation ---------------------------------------------------------

    def invoke(self, line_name: str, binary_address: Optional[int]) -> int:
        """Submit a CSD function call and ring the doorbell.

        The CSE fetches the request immediately when idle (our executor
        runs one offloaded task at a time).  Returns the command id.
        A stalled queue pair is waited out within the command deadline
        (:class:`~repro.errors.DeadlineError` beyond it); a full
        submission queue blocks the host in sim time for at most
        ``config.queue_full_wait_s`` before raising
        :class:`~repro.errors.DispatchError`.
        """
        if binary_address is None:
            raise DispatchError(
                f"line {line_name!r} has no installed device binary"
            )
        self._await_stall_clearance()
        self._await_submission_space()
        command_id = self.queue_pair.sq.submit(
            opcode="exec", payload={"line": line_name, "binary": binary_address}
        )
        if self.obs.enabled:
            self.obs.metrics.gauge(self._m_sq_depth).set(len(self.queue_pair.sq))
        self.machine.d2h_link.message()  # doorbell write
        command = self.queue_pair.sq.fetch()
        if command.command_id != command_id:
            raise DispatchError("queue pair delivered commands out of order")
        self.invocations += 1
        if self.obs.enabled:
            self.obs.metrics.counter("dispatch.invocations").inc()
        return command_id

    def _await_stall_clearance(self) -> None:
        simulator = self.machine.simulator
        if not self.queue_pair.stalled_at(simulator.now):
            return
        config = self.machine.config
        wait = self.queue_pair.stalled_until - simulator.now
        if wait > config.command_deadline_s:
            self.fault_log.record(
                simulator.now, "nvme-queue-stall", self.device.name,
                "deadline-exceeded",
                f"stall of {wait:.6f}s exceeds the {config.command_deadline_s}s deadline",
            )
            self.obs.count("dispatch.deadline_exceeded")
            raise DeadlineError(
                f"queue pair of {self.device.name!r} stalled for {wait:.6f}s, "
                f"beyond the {config.command_deadline_s}s command deadline"
            )
        self.fault_log.record(
            simulator.now, "nvme-queue-stall", self.device.name,
            "stall-wait", f"waited {wait:.6f}s for the stall window to pass",
        )
        self._wait(wait)

    def _await_submission_space(self) -> None:
        """Back-pressure: block in sim time until the SQ has a free slot."""
        sq = self.queue_pair.sq
        if not sq.is_full:
            return
        config = self.machine.config
        waited = 0.0
        delay = config.retry_backoff_base_s
        while sq.is_full:
            if waited >= config.queue_full_wait_s:
                self.fault_log.record(
                    self.machine.simulator.now, "backpressure", self.device.name,
                    "queue-full-timeout",
                    f"no SQ slot freed within {config.queue_full_wait_s}s",
                )
                raise DispatchError(
                    f"submission queue of {self.device.name!r} still full after "
                    f"a bounded wait of {config.queue_full_wait_s}s"
                )
            step = min(delay, config.queue_full_wait_s - waited)
            self._wait(step)
            waited += step
            delay *= config.retry_backoff_factor
            self.backpressure_waits += 1
            self.obs.count("dispatch.backpressure_waits")
        self.fault_log.record(
            self.machine.simulator.now, "backpressure", self.device.name,
            "queue-space-acquired", f"waited {waited:.6f}s for an SQ slot",
        )

    # --- completion ---------------------------------------------------------

    def complete(self, command_id: int, status: str = "ok") -> None:
        """Device side: post the final completion for a call."""
        self.queue_pair.cq.post(Completion(command_id=command_id, status=status))

    def abandon(self, command_id: int) -> None:
        """Stop expecting a completion (the host fell back to itself).

        A completion that surfaces later for an abandoned command — a
        reset device replaying its queue, say — is dropped idempotently.
        """
        self._abandoned_ids.add(command_id)

    def reap_completion(self, command_id: int) -> Completion:
        """Host side: wait for the final completion of a call.

        Waits up to ``config.command_deadline_s`` of sim time (in
        exponentially growing steps, so background recovery events can
        fire); on each expiry the command is re-submitted — a live
        device then re-posts its completion — up to
        ``config.command_max_retries`` times before the device is
        declared dead with :class:`~repro.errors.DeviceLostError`.
        Duplicate completions (a retry racing a late original) are
        dropped.
        """
        config = self.machine.config
        simulator = self.machine.simulator
        reap_started = simulator.now
        attempts = 0
        while True:
            completion = self._try_reap(command_id)
            if completion is not None:
                self._completed_ids.add(command_id)
                self._record_reap(simulator.now - reap_started)
                return completion
            waited = 0.0
            delay = config.retry_backoff_base_s
            while waited < config.command_deadline_s:
                step = min(delay, config.command_deadline_s - waited)
                self._wait(step)
                waited += step
                delay *= config.retry_backoff_factor
                completion = self._try_reap(command_id)
                if completion is not None:
                    self._completed_ids.add(command_id)
                    self._record_reap(simulator.now - reap_started)
                    return completion
            if attempts >= config.command_max_retries:
                self.fault_log.record(
                    simulator.now, "recovery", self.device.name, "device-dead",
                    f"command {command_id} unacknowledged after "
                    f"{attempts} retries; declaring the device lost",
                )
                self.obs.count("dispatch.device_lost")
                raise DeviceLostError(
                    f"device {self.device.name!r} never completed command "
                    f"{command_id} ({attempts} retries exhausted)"
                )
            attempts += 1
            self.retries += 1
            self.obs.count("dispatch.retries")
            self.fault_log.record(
                simulator.now, "recovery", self.device.name, "retry",
                f"command {command_id} re-submitted (attempt {attempts})",
            )
            self.machine.d2h_link.message()  # re-ring the doorbell
            if self.device.healthy:
                # A live device re-executes the (idempotent) command and
                # posts a fresh completion; the armed loss fault may
                # swallow this one too.
                self.queue_pair.cq.post(Completion(command_id=command_id, status="ok"))

    def _record_reap(self, waited_s: float) -> None:
        if self.obs.enabled:
            self.obs.metrics.histogram("dispatch.reap_wait_seconds").observe(waited_s)

    def _try_reap(self, command_id: int) -> Optional[Completion]:
        """Reap the completion for ``command_id`` if it is visible now."""
        simulator = self.machine.simulator
        cq = self.queue_pair.cq
        if self.queue_pair.stalled_at(simulator.now):
            return None
        if self._cq_visible_at is None:
            extra = cq.consume_delay()
            if extra > 0:
                self._cq_visible_at = simulator.now + extra
                self.fault_log.record(
                    simulator.now, "nvme-completion-delay", self.device.name,
                    "late-completion", f"completion withheld for {extra:.6f}s",
                )
        if self._cq_visible_at is not None:
            if simulator.now < self._cq_visible_at:
                return None
            self._cq_visible_at = None
        while not cq.is_empty:
            completion = cq.reap()
            if (completion.command_id in self._completed_ids
                    or completion.command_id in self._abandoned_ids):
                self.duplicates_dropped += 1
                self.obs.count("dispatch.duplicates_dropped")
                self.fault_log.record(
                    simulator.now, "recovery", self.device.name,
                    "duplicate-dropped",
                    f"stale completion for command {completion.command_id}",
                )
                continue
            if completion.command_id != command_id:
                raise DispatchError(
                    f"expected completion for command {command_id}, "
                    f"got {completion.command_id}"
                )
            return completion
        return None

    # --- status updates --------------------------------------------------------

    def post_status(self, update: StatusUpdate) -> None:
        """Device side: publish a per-line status update.

        Costs one small message on the device-to-host path.
        """
        self.queue_pair.cq.post(Completion(command_id=-1, status="status", payload=update))
        self.machine.d2h_link.message()
        self.status_updates += 1
        if self.obs.enabled:
            self.obs.metrics.counter("dispatch.status_updates").inc()
            self.obs.metrics.gauge(self._m_cq_depth).set(len(self.queue_pair.cq))

    def drain_status(self) -> List[StatusUpdate]:
        """Host side: collect all pending status updates."""
        updates: List[StatusUpdate] = []
        retained: List[Completion] = []
        for completion in self.queue_pair.cq.drain():
            if completion.status == "status":
                updates.append(completion.payload)
            else:
                retained.append(completion)
        # Final completions reaped here out of order would be lost;
        # repost them for reap_completion.
        for completion in retained:
            self.queue_pair.cq.post(completion)
        return updates
