"""Crash-consistent line-boundary checkpointing (paper §III-D, hardened).

The paper's runtime resumes a migrated task "at a Python-line boundary
from shared memory".  PR 1 gave the stack faults that can strike *while
that shared state is being written* — a CSE crash or power event
mid-DMA leaves a torn record behind.  This module makes the resume
point crash-consistent:

* every chunk (dynamic line-instance) boundary writes a **versioned,
  CRC-protected record** — line index, chunk cursor, the line's
  live-variable names per :mod:`repro.frontend.liveness`, and the
  simulated timestamp — into the device's BAR checkpoint area
  (:class:`repro.storage.bar.CheckpointArea`);
* writes **alternate between two slots**, so a torn write can only
  corrupt the generation being written, never the last committed one;
* restore validates the CRC and falls back to the surviving
  generation; if neither slot holds a valid record for the current
  line, the runtime restarts the line from chunk 0 — slow, never
  wrong.

Record layout (big-endian)::

    MAGIC(4) gen(8) line(8) sim_time(8) nvars(2) names... cursor(8) crc(4)

The chunk cursor deliberately sits *after* the variable names: a torn
write lands the head of the record and scrambles the tail, so the field
a corrupt resume would trust blindly is exactly the field the tear
destroys — which is what the chaos harness's planted-bug campaign
(``checkpoint_validate=False``) demonstrates.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..errors import CheckpointError
from ..faults import FaultLog
from ..integrity import IntegrityChecker

_MAGIC = b"ACK1"
_HEAD = struct.Struct("!4sQQdH")  # magic, generation, line_index, sim_time, nvars
_TAIL = struct.Struct("!Q")       # next_chunk cursor
_CRC = struct.Struct("!I")

#: Sentinel line index for "no line executing" records.
NO_LINE = 0xFFFFFFFFFFFFFFFF


@dataclass(frozen=True)
class CheckpointRecord:
    """One committed resume point."""

    generation: int
    line_index: int
    #: Next chunk to execute — everything before it is durable.
    next_chunk: int
    #: Live-variable names whose values the record covers (the locals
    #: a migration must make reachable from the host).
    live_vars: Tuple[str, ...]
    sim_time: float


def encode_record(record: CheckpointRecord) -> bytes:
    """Serialize a record; the trailing CRC covers every prior byte."""
    if record.generation < 0 or record.next_chunk < 0:
        raise CheckpointError("generation and next_chunk must be non-negative")
    names = [name.encode("utf-8") for name in record.live_vars]
    if len(names) > 0xFFFF:
        raise CheckpointError(f"too many live variables ({len(names)})")
    parts = [_HEAD.pack(
        _MAGIC, record.generation, record.line_index,
        record.sim_time, len(names),
    )]
    for blob in names:
        if len(blob) > 0xFF:
            raise CheckpointError(f"live-variable name too long ({len(blob)} bytes)")
        parts.append(struct.pack("!B", len(blob)))
        parts.append(blob)
    parts.append(_TAIL.pack(record.next_chunk))
    payload = b"".join(parts)
    return payload + _CRC.pack(zlib.crc32(payload))


def tear_offset(record: CheckpointRecord) -> int:
    """Bytes of the encoded record a torn write still lands.

    The head — magic, generation, line index, timestamp and names —
    makes it to DRAM; the chunk cursor and CRC do not.
    """
    names_bytes = sum(1 + len(name.encode("utf-8")) for name in record.live_vars)
    return _HEAD.size + names_bytes


def decode_record(blob: Optional[bytes], validate: bool = True) -> Optional[CheckpointRecord]:
    """Parse a slot image; returns None for anything untrustworthy.

    With ``validate`` (the protocol default) a CRC mismatch rejects the
    record.  Without it — the deliberately plantable bug — a
    structurally parseable record is trusted verbatim, scrambled chunk
    cursor and all.
    """
    if blob is None or len(blob) < _HEAD.size + _TAIL.size + _CRC.size:
        return None
    if validate:
        payload, crc_bytes = blob[:-_CRC.size], blob[-_CRC.size:]
        if zlib.crc32(payload) != _CRC.unpack(crc_bytes)[0]:
            return None
    try:
        magic, generation, line_index, sim_time, nvars = _HEAD.unpack_from(blob, 0)
        if magic != _MAGIC:
            return None
        offset = _HEAD.size
        names = []
        for _ in range(nvars):
            (length,) = struct.unpack_from("!B", blob, offset)
            offset += 1
            names.append(blob[offset:offset + length].decode("utf-8"))
            offset += length
        (next_chunk,) = _TAIL.unpack_from(blob, offset)
    except (struct.error, UnicodeDecodeError, IndexError):
        return None
    return CheckpointRecord(
        generation=generation,
        line_index=line_index,
        next_chunk=next_chunk,
        live_vars=tuple(names),
        sim_time=sim_time,
    )


class CheckpointManager:
    """Host/device protocol driver over one device's checkpoint area.

    The executor calls :meth:`save` at every completed chunk boundary
    and :meth:`resume_chunk` whenever it must decide where a line
    resumes after a migration or a device fault.  All decisions that
    matter for crash consistency — slot choice, CRC validation,
    generation comparison, fallback — live here, so the executor treats
    the resume point as a black box read from shared memory, exactly as
    the real runtime would.
    """

    def __init__(self, device, config, fault_log: Optional[FaultLog] = None) -> None:
        self.device = device
        self.config = config
        self.area = device.checkpoints
        self.fault_log = fault_log if fault_log is not None else FaultLog()
        self.obs = device.obs
        # Record-level digest checks on the read side (silent bitrot in
        # BAR memory is caught here; free and silent when disabled).
        self.integrity = IntegrityChecker(
            config=config,
            clock=device.simulator.clock,
            fault_log=self.fault_log,
            obs=self.obs,
        )
        self.saves = 0
        self.restores = 0
        #: Restores served by the older generation (torn newest slot).
        self.fallbacks = 0
        #: Restores with no usable record at all (line restarted).
        self.restarts = 0

    @property
    def enabled(self) -> bool:
        return bool(self.config.checkpoint_enabled)

    # --- write side --------------------------------------------------------

    def save(
        self,
        line_index: int,
        next_chunk: int,
        live_vars: Sequence[str],
        sim_time: float,
    ) -> None:
        """Commit a resume point for ``line_index`` at ``next_chunk``."""
        if not self.enabled:
            return
        generation = self.area.next_generation
        record = CheckpointRecord(
            generation=generation,
            line_index=line_index,
            next_chunk=next_chunk,
            live_vars=tuple(live_vars),
            sim_time=sim_time,
        )
        slot = generation % 2 if self.config.checkpoint_double_buffer else 0
        clean = self.area.write(slot, encode_record(record), tear_offset(record))
        self.area.next_generation = generation + 1
        self.saves += 1
        if self.obs.enabled:
            self.obs.metrics.counter("checkpoint.saves").inc()
            self.obs.metrics.counter("checkpoint.write_seconds").inc(
                self.config.checkpoint_write_cost_s
            )
        if self.config.checkpoint_write_cost_s > 0:
            self.device.simulator.clock.advance(
                self.config.checkpoint_write_cost_s, component="checkpoint"
            )
        if not clean:
            self.obs.count("checkpoint.torn_writes")
            # Accounting only: the host has no idea yet — it will find
            # out through the CRC when (if) it ever restores.
            self.fault_log.record(
                self.device.simulator.now, "checkpoint-torn-write",
                self.device.name, "torn",
                f"record gen {generation} (line {line_index}, "
                f"cursor {next_chunk}) torn mid-write",
            )

    # --- read side ---------------------------------------------------------

    def restore(self) -> Optional[CheckpointRecord]:
        """The newest trustworthy record in the area, if any."""
        validate = bool(self.config.checkpoint_validate)
        records = []
        for slot in (0, 1):
            blob = self.area.read(slot)
            record = decode_record(blob, validate=validate)
            if blob is not None and self.integrity.enabled:
                self.integrity.charge_verify(len(blob))
                if record is None and validate:
                    # The slot holds bytes that no longer match their
                    # CRC — a torn write or post-commit bitrot, caught
                    # at the consumption point.
                    self.integrity.record_detected(
                        self.device.name,
                        f"checkpoint slot {slot} failed CRC validation",
                    )
            records.append(record)
        live = [record for record in records if record is not None]
        if not live:
            return None
        return max(live, key=lambda record: record.generation)

    def resume_chunk(self, line_index: int, chunks: int, fallback: int) -> int:
        """Where ``line_index`` resumes after a fault or migration.

        With checkpointing disabled the host-side chunk counter
        (``fallback``) is trusted, as before this protocol existed.
        Otherwise the answer comes from shared memory: the newest valid
        record for this line, the surviving older generation if the
        newest write was torn, or chunk 0 (restart the line) when
        nothing valid covers it.  The cursor is clamped to the line's
        chunk count — a resume point can never *skip* work unless
        validation has been deliberately turned off.
        """
        if not self.enabled:
            return fallback
        self.restores += 1
        self.obs.count("checkpoint.restores")
        record = self.restore()
        # After restore(): slot verification may have advanced the
        # clock, and the restore decision is logged at decision time.
        now = self.device.simulator.now
        if record is None or record.line_index != line_index:
            self.restarts += 1
            self.obs.count("checkpoint.restarts")
            self.fault_log.record(
                now, "checkpoint-restore", self.device.name, "restart-line",
                f"no valid checkpoint for line {line_index}; "
                f"restarting at chunk 0",
            )
            return 0
        cursor = min(int(record.next_chunk), int(chunks))
        if record.generation + 1 < self.area.next_generation:
            # The newest write never became restorable: we are resuming
            # from the previous committed generation.
            self.fallbacks += 1
            self.obs.count("checkpoint.fallbacks")
            self.fault_log.record(
                now, "checkpoint-restore", self.device.name,
                "fallback-generation",
                f"gen {self.area.next_generation - 1} unreadable; resumed "
                f"line {line_index} at chunk {cursor} from gen "
                f"{record.generation}",
            )
        return cursor

    def stats(self) -> dict:
        return {
            "saves": self.saves,
            "restores": self.restores,
            "fallbacks": self.fallbacks,
            "restarts": self.restarts,
            "torn_writes": self.area.torn_writes,
            "bitrot_events": self.area.bitrot_events,
        }
