"""Line profiler: the measurement apparatus of the sampling phase.

The paper implements this with ``line_profiler``/``kernprof``: run the
program on a sample input and record, for every line, the execution
time (with stored-data access time separated out), the input size, and
the output size (§III-A).

This module is the *only* place where the runtime touches a
statement's ground-truth cost model, and only ever at **sample scale**
— it plays the role of the stopwatch.  Output sizes are not taken from
the cost model at all: the profiler executes the real kernel on the
real sample payload and measures the bytes that come out.  Everything
downstream (fitting, planning) consumes :class:`LineRecord` objects,
which is the firewall that keeps ActivePy honest: it can only be as
good as what a profiler could really observe.

Times are normalised to compiled-kernel time.  The real system samples
under the interpreter and rescales by its own known overhead factors
before comparing against generated code; folding that constant in here
keeps every downstream ratio identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

import numpy as np

from ..config import SystemConfig
from ..errors import SamplingError
from ..lang.dataset import Dataset
from ..lang.program import Program


def payload_nbytes(payload: Dict[str, Any]) -> float:
    """Measured size in bytes of a payload dict (arrays and scalars).

    Keys starting with ``__stored`` are skipped: they stand for data
    still resident on flash (the plain-Python frontend threads
    not-yet-read parameters through under that convention), which a
    line profiler would not see as in-memory traffic.
    """
    total = 0.0
    for key, value in payload.items():
        if isinstance(key, str) and key.startswith("__stored"):
            continue
        if isinstance(value, np.ndarray):
            total += value.nbytes
        elif isinstance(value, (int, float, np.integer, np.floating)):
            total += 8.0
        elif isinstance(value, (list, tuple)):
            total += 8.0 * len(value)
        elif isinstance(value, dict):
            total += payload_nbytes(value)
        else:
            total += 8.0  # opaque object header
    return total


@dataclass(frozen=True, slots=True)
class LineRecord:
    """What the profiler observed for one line on one sample run."""

    index: int
    name: str
    n_records: int
    #: Kernel execution time, stored-data access excluded.
    compute_seconds: float
    #: Time spent reading stored data (separated per paper §III-A).
    data_access_seconds: float
    #: Measured bytes flowing in from the previous line.
    input_bytes: float
    #: Measured bytes this line passed to the next line.
    output_bytes: float
    #: Bytes streamed from storage by this line.
    storage_bytes: float


class LineProfiler:
    """Runs a program on a (sample) dataset and records per-line stats.

    When ``config.profiler_noise`` is nonzero, every timed quantity is
    perturbed by a deterministic, seeded multiplicative jitter — the
    measurement error a real ``line_profiler`` run exhibits.  Byte
    counts are exact (the profiler can count them), times are not.
    """

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self._noise_rng = np.random.default_rng(config.profiler_noise_seed)

    def _jitter(self) -> float:
        if self.config.profiler_noise <= 0:
            return 1.0
        factor = 1.0 + self._noise_rng.normal(0.0, self.config.profiler_noise)
        return max(0.1, factor)

    def profile(self, program: Program, dataset: Dataset) -> List[LineRecord]:
        """Execute every line on the dataset's real payload; observe.

        Returns one :class:`LineRecord` per line.  Raises
        :class:`~repro.errors.SamplingError` if a kernel fails — a
        sample input that crashes the program cannot guide planning.
        """
        n = dataset.n_records
        payload = dataset.payload
        records: List[LineRecord] = []
        previous_output = 0.0
        for index, statement in enumerate(program):
            try:
                payload = statement.kernel(payload)
            except Exception as exc:
                raise SamplingError(
                    f"kernel {statement.name!r} failed on a {n}-record sample: {exc}"
                ) from exc
            if not isinstance(payload, dict):
                raise SamplingError(
                    f"kernel {statement.name!r} returned "
                    f"{type(payload).__name__}, expected a payload dict"
                )
            measured_output = payload_nbytes(payload)
            storage = statement.storage_bytes(n)
            compute = statement.instructions(n) / self.config.host_ips * self._jitter()
            data_access = storage / self.config.bw_host_storage * self._jitter()
            records.append(
                LineRecord(
                    index=index,
                    name=statement.name,
                    n_records=n,
                    compute_seconds=compute,
                    data_access_seconds=data_access,
                    input_bytes=previous_output,
                    output_bytes=measured_output,
                    storage_bytes=storage,
                )
            )
            previous_output = measured_output
        return records

    def run_seconds(self, records: List[LineRecord]) -> float:
        """Wall time one profiled run took (compute + data access)."""
        return sum(r.compute_seconds + r.data_access_seconds for r in records)
