"""The ActivePy facade: the framework's public entry point.

A user hands over an unannotated program and its dataset; ActivePy does
the rest (paper Figure 3): sampling, curve fitting, Equation-1-driven
planning, code generation for both units, and monitored execution with
dynamic migration.  The report returned exposes every intermediate so
experiments and tests can audit each stage.

Run-shaping knobs (tracing, progress triggers, fault plans, an
observability handle) travel in a keyword-only :class:`RunOptions`
dataclass; the pre-redesign ``trace=``/``progress_triggers=`` keywords
still work for one release behind a :class:`DeprecationWarning`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .._deprecations import warn_once
from ..analysis.timeline import ExecutionTimeline
from ..config import DEFAULT_CONFIG, SystemConfig
from ..errors import PlanningError
from ..faults import FaultInjector, FaultPlan
from ..hw.topology import Machine, build_machine
from ..lang.dataset import Dataset
from ..lang.program import Program
from ..obs import Observability
from .codegen import CodeGenerator, CompiledProgram, ExecutionMode
from .estimator import LineEstimate, build_estimates
from .executor import ExecutionResult, PlanExecutor, ProgressTrigger
from .explain import PREDICTION_ERROR_BUCKETS, PlanExplanation, explain_plan
from .planner import Plan, assign_csd_code
from .plansearch import SearchOptions, SearchReport, search_plan
from .profcache import ProfileCache, default_cache
from .sampling import SamplingPhase, SamplingReport

__all__ = ["ActivePy", "ActivePyReport", "PLAN_MODES", "RunOptions", "run_plan"]

#: How step 3 picks the host/CSD split: the paper's greedy Algorithm 1,
#: or the branch-and-bound speculative search over forked simulator
#: states (:mod:`repro.runtime.plansearch`).
PLAN_MODES = ("greedy", "search")

#: Distinguishes "caller never passed the deprecated keyword" from any
#: legitimate value (including None/False/()).
_UNSET: Any = object()


@dataclass(frozen=True)
class RunOptions:
    """Everything that shapes one :meth:`ActivePy.run` besides the work.

    Attributes
    ----------
    trace:
        Attach an :class:`ExecutionTimeline` of every span to the
        report (backed by the observability tracer).
    progress_triggers:
        Experiment machinery: ``(progress_fraction, availability)``
        pairs that throttle the CSE when the offloaded work crosses a
        progress fraction (the paper's Figure 5 study).
    fault_plan:
        Deterministic fault injection (:mod:`repro.faults`) armed
        before execution.
    obs:
        A caller-owned :class:`~repro.obs.Observability` handle; the
        machine's components record metrics and spans into it.  Omit
        for a zero-overhead disabled handle.
    plan_mode:
        Override the instance's planning mode for this run: "greedy"
        (Algorithm 1) or "search" (branch-and-bound over forked
        simulator states).  ``None`` keeps the instance default.
    search_options:
        Knobs for ``plan_mode="search"``
        (:class:`~repro.runtime.plansearch.SearchOptions`); ``None``
        keeps the instance default.
    """

    trace: bool = False
    progress_triggers: Tuple[ProgressTrigger, ...] = ()
    fault_plan: Optional[FaultPlan] = None
    obs: Optional[Observability] = None
    plan_mode: Optional[str] = None
    search_options: Optional[SearchOptions] = None

    def __post_init__(self) -> None:
        if self.plan_mode is not None and self.plan_mode not in PLAN_MODES:
            raise PlanningError(
                f"invalid plan_mode {self.plan_mode!r}; expected one of "
                f"{PLAN_MODES}"
            )


@dataclass
class ActivePyReport:
    """Everything one ActivePy run produced, stage by stage."""

    program_name: str
    sampling: SamplingReport
    estimates: List[LineEstimate]
    plan: Plan
    compiled: CompiledProgram
    result: ExecutionResult
    #: End-to-end simulated seconds: sampling + compile + execution.
    total_seconds: float
    #: Span trace of the run (None unless requested).
    timeline: Optional[ExecutionTimeline] = None
    #: The observability handle the run recorded into (None when
    #: observability was disabled for the run).
    obs: Optional[Observability] = None
    #: Predicted vs measured per-line times and the migration audit
    #: trail (always attached; costs no simulated time).
    explanation: Optional[PlanExplanation] = None
    #: True when the sampling phase was served from the profile cache
    #: (wall-clock shortcut only; simulated results are bit-identical
    #: either way, so this never appears in run signatures).
    sampling_cached: bool = False
    #: How the profile cache treated this run: "hit", "miss",
    #: "uncacheable" (unfingerprintable program), or "off".
    sampling_cache_status: str = "off"
    #: The branch-and-bound search's full outcome (None for greedy
    #: runs).  ``search.cache_hit`` marks warm runs that skipped the
    #: search and served the plan from the profile cache.
    search: Optional[SearchReport] = None

    @property
    def execution_seconds(self) -> float:
        return self.result.total_seconds

    @property
    def overhead_seconds(self) -> float:
        """Sampling + code-generation cost (the paper's ~0.1 s claim)."""
        return self.total_seconds - self.result.total_seconds

    # --- the common report protocol (see analysis/export.py) ---------------

    def summary(self) -> Dict[str, Any]:
        """The headline numbers of the run, JSON-ready."""
        return {
            "program": self.program_name,
            "total_seconds": self.total_seconds,
            "execution_seconds": self.execution_seconds,
            "overhead_seconds": self.overhead_seconds,
            "assignments": list(self.plan.assignments),
            "migrated": self.result.migrated,
            "degraded": self.result.degraded,
        }

    def to_jsonable(self) -> Dict[str, Any]:
        """Full JSON-ready view: summary + execution result + metrics."""
        payload: Dict[str, Any] = {"experiment": "activepy-run"}
        payload.update(self.summary())
        payload["result"] = self.result.to_jsonable()
        if self.explanation is not None:
            payload["explanation"] = self.explanation.to_jsonable()
        if self.obs is not None:
            payload["metrics"] = self.obs.snapshot()
        return payload


class ActivePy:
    """The runtime framework.

    Parameters
    ----------
    config:
        Platform parameters; defaults to the paper-calibrated platform.
    migration_enabled:
        The full-fledged framework migrates; the paper's "ActivePy w/o
        migration" ablation sets this to False.
    profile_cache:
        Where repeat runs find their sampling/fitting results
        (:mod:`repro.runtime.profcache`).  ``None`` uses the
        process-wide default cache (honouring ``REPRO_PROFCACHE`` /
        ``REPRO_CACHE_DIR``); ``False`` disables caching for this
        instance; a :class:`ProfileCache` pins a specific directory.
        A cache hit skips the wall-clock work of re-profiling but
        charges the identical simulated sampling cost, so simulated
        results are bit-identical warm or cold.  Runs with
        ``profiler_noise > 0`` always bypass the cache (their profiles
        are meant to differ run to run).
    plan_mode:
        "greedy" runs the paper's Algorithm 1 (the default); "search"
        runs the branch-and-bound speculative search
        (:mod:`repro.runtime.plansearch`), which never returns a plan
        with a worse speculative makespan than greedy's.  Search
        results are keyed into the profile cache, so warm runs skip
        the search entirely.
    search_options:
        Default :class:`~repro.runtime.plansearch.SearchOptions` for
        ``plan_mode="search"`` (beam width, worker processes).
    """

    def __init__(
        self,
        config: SystemConfig = DEFAULT_CONFIG,
        migration_enabled: bool = True,
        profile_cache: Any = None,
        plan_mode: str = "greedy",
        search_options: Optional[SearchOptions] = None,
    ) -> None:
        if plan_mode not in PLAN_MODES:
            raise PlanningError(
                f"invalid plan_mode {plan_mode!r}; expected one of "
                f"{PLAN_MODES}"
            )
        self.config = config
        self.migration_enabled = migration_enabled
        self.plan_mode = plan_mode
        self.search_options = search_options
        self._sampling_phase = SamplingPhase(config)
        self._codegen = CodeGenerator(config)
        if profile_cache is None or profile_cache is True:
            self._profile_cache: Optional[ProfileCache] = default_cache()
        elif profile_cache is False:
            self._profile_cache = None
        else:
            self._profile_cache = profile_cache

    def run(
        self,
        program: Program,
        dataset: Dataset,
        machine: Optional[Machine] = None,
        *,
        options: Optional[RunOptions] = None,
        obs: Optional[Observability] = None,
        fault_plan: Optional[FaultPlan] = None,
        trace: Any = _UNSET,
        progress_triggers: Any = _UNSET,
    ) -> ActivePyReport:
        """Run an unannotated program end to end.

        Run-shaping knobs travel in ``options`` (a :class:`RunOptions`);
        ``obs`` and ``fault_plan`` are accepted directly as conveniences
        and override the corresponding ``options`` fields.  The old
        ``trace=``/``progress_triggers=`` keywords still work behind a
        :class:`DeprecationWarning`.

        Injected faults and the runtime's recovery actions land on
        ``result.fault_events``; with tracing the report carries an
        :class:`ExecutionTimeline` of every span, and with an enabled
        ``obs`` handle ``report.obs`` exposes the collected metrics.
        """
        opts = self._resolve_options(
            options, obs=obs, fault_plan=fault_plan,
            trace=trace, progress_triggers=progress_triggers,
        )
        if machine is None:
            machine = build_machine(self.config, obs=opts.obs)
        elif opts.obs is not None and machine.obs is not opts.obs:
            # Pre-built machine: its components already hold the
            # machine's handle by reference, so point that handle at
            # the caller's sinks instead of rebuilding the hardware.
            machine.obs.adopt(opts.obs)
        handle = machine.obs
        if opts.trace:
            # Tracing implies an enabled handle: the timeline is now
            # materialised from the tracer's span log.
            handle.enabled = True
            handle.ensure_tracer()
        trace_mark = handle.tracer.count if handle.tracer is not None else 0
        device = _resolve_device(machine, dataset)

        injector = None
        if opts.fault_plan is not None and len(opts.fault_plan) > 0:
            injector = FaultInjector(machine, opts.fault_plan)
            injector.arm()

        start = machine.now

        # 1. Sampling phase: run the program on scaled sample inputs.
        #    The profile cache short-circuits the *wall-clock* work of
        #    re-profiling an unchanged run; the simulated cost charged
        #    below comes from the (bit-identical) cached report, so sim
        #    results do not depend on cache state.  Noisy profiles are
        #    meant to differ between runs, so noise bypasses the cache.
        sampling: Optional[SamplingReport] = None
        cache_key: Optional[str] = None
        cache_status = "off"
        cache = (
            self._profile_cache if self.config.profiler_noise == 0 else None
        )
        if cache is not None:
            invalidations_before = cache.invalidations
            cache_key = cache.key_for(program, dataset, self.config)
            if cache_key is None:
                cache_status = "uncacheable"
            else:
                sampling = cache.get(cache_key)
                cache_status = "hit" if sampling is not None else "miss"
            if handle.enabled:
                handle.count(f"profcache.{cache_status}")
                stale = cache.invalidations - invalidations_before
                if stale:
                    handle.count("profcache.invalidation", stale)
        if sampling is None:
            sampling = self._sampling_phase.run(program, dataset)
            if cache is not None and cache_key is not None:
                cache.put(cache_key, sampling)
        machine.simulator.clock.advance(sampling.sampling_seconds, component="host")
        handle.record_span("sampling-phase", "sampling", "host", start, machine.now)

        # 2. Extrapolate to the raw input; calibrate C from the device's
        #    performance counters.
        estimates = build_estimates(
            sampling,
            full_records=dataset.n_records,
            config=self.config,
            device_counters=device.cse.read_performance_counters(),
        )

        # 3. Pick the CSD code regions: Algorithm 1's greedy pass, and
        #    — in "search" mode — the branch-and-bound refinement over
        #    forked simulator states, seeded with greedy's plan so it
        #    can only match or beat it.  Like greedy, the search is
        #    digital-twin work and charges no simulated time; its wall
        #    cost is bounded by the perf gate and amortised by the
        #    profile cache.
        plan = assign_csd_code(estimates, self.config)
        search_report: Optional[SearchReport] = None
        plan_mode = (
            opts.plan_mode if opts.plan_mode is not None else self.plan_mode
        )
        if plan_mode == "search":
            search_report = self._search_plan(
                program, dataset, estimates, plan,
                cache=cache, cache_key=cache_key, handle=handle, opts=opts,
            )
            plan = search_report.plan

        # 4. Generate machine code for both units and distribute it.
        compile_start = machine.now
        compiled = self._codegen.generate(
            machine, program, plan, mode=ExecutionMode.ACTIVEPY, device=device
        )
        handle.record_span("codegen", "compile", "host", compile_start, machine.now)

        # 5. Execute with runtime monitoring (and migration, if enabled).
        executor = PlanExecutor(
            machine, migration_enabled=self.migration_enabled,
            device=device,
            fault_log=injector.log if injector is not None else None,
        )
        result = executor.execute(
            compiled, n_records=dataset.n_records,
            progress_triggers=opts.progress_triggers,
        )

        # 6. Explain: the planner's per-line predictions next to what
        #    the executor measured, so the plan is auditable — search
        #    plans additionally carry their diff against greedy.
        explanation = explain_plan(
            plan, result, self.config, search=search_report
        )
        if handle.enabled:
            self._record_explanation(handle, explanation)

        timeline = (
            handle.tracer.to_timeline(since=trace_mark)
            if opts.trace and handle.tracer is not None else None
        )
        return ActivePyReport(
            program_name=program.name,
            sampling=sampling,
            estimates=estimates,
            plan=plan,
            compiled=compiled,
            result=result,
            total_seconds=machine.now - start,
            timeline=timeline,
            obs=handle if handle.enabled else None,
            explanation=explanation,
            sampling_cached=cache_status == "hit",
            sampling_cache_status=cache_status,
            search=search_report,
        )

    def _search_plan(
        self,
        program: Program,
        dataset: Dataset,
        estimates: List[LineEstimate],
        greedy_plan: Plan,
        cache: Optional[ProfileCache],
        cache_key: Optional[str],
        handle: Observability,
        opts: RunOptions,
    ) -> SearchReport:
        """Run (or cache-serve) the branch-and-bound plan search.

        The plan cache key derives from the sampling fingerprint plus
        the search knobs, so a warm run skips the search entirely and
        counts a ``plansearch.cache_hit``; any code or input change
        that would re-profile also re-searches.
        """
        search_opts = (
            opts.search_options if opts.search_options is not None
            else self.search_options
        )
        if search_opts is None:
            search_opts = SearchOptions()
        report: Optional[SearchReport] = None
        plan_cache_key: Optional[str] = None
        if cache is not None and cache_key is not None:
            plan_cache_key = cache.plan_key(
                cache_key, search_opts.digest_token()
            )
            payload = cache.get_plan(plan_cache_key)
            if payload is not None:
                try:
                    report = SearchReport.from_jsonable(payload)
                    report.cache_hit = True
                except PlanningError:
                    report = None
        if report is None:
            report = search_plan(
                program, dataset, estimates, self.config,
                options=search_opts, greedy=greedy_plan,
            )
            if cache is not None and plan_cache_key is not None:
                cache.put_plan(plan_cache_key, report.to_jsonable())
        if handle.enabled:
            report.publish(handle)
        return report

    @staticmethod
    def _record_explanation(
        handle: Observability, explanation: PlanExplanation
    ) -> None:
        """Expose per-line prediction error through the metrics registry."""
        metrics = handle.metrics
        for line in explanation.lines:
            prefix = f"plan.line.{line.name}"
            metrics.gauge(f"{prefix}.predicted_seconds").set(
                line.predicted_seconds
            )
            metrics.gauge(f"{prefix}.measured_seconds").set(line.measured_seconds)
            metrics.gauge(f"{prefix}.error_seconds").set(line.error_seconds)
            metrics.histogram(
                "plan.prediction.relative_error", buckets=PREDICTION_ERROR_BUCKETS
            ).observe(line.relative_error)
        metrics.gauge("plan.prediction.max_relative_error").set(
            explanation.max_relative_error
        )
        metrics.gauge("plan.prediction.total_error_seconds").set(
            explanation.total_error_seconds
        )

    @staticmethod
    def _resolve_options(
        options: Optional[RunOptions],
        obs: Optional[Observability],
        fault_plan: Optional[FaultPlan],
        trace: Any,
        progress_triggers: Any,
    ) -> RunOptions:
        """Fold direct and deprecated keywords into one RunOptions."""
        opts = options if options is not None else RunOptions()
        if trace is not _UNSET:
            warn_once(
                "ActivePy.run:trace",
                "ActivePy.run(trace=...) is deprecated and will be removed; "
                "pass options=RunOptions(trace=...) instead",
                stacklevel=3,
            )
            opts = replace(opts, trace=bool(trace))
        if progress_triggers is not _UNSET:
            warn_once(
                "ActivePy.run:progress_triggers",
                "ActivePy.run(progress_triggers=...) is deprecated and will "
                "be removed; pass options=RunOptions(progress_triggers=...) "
                "instead",
                stacklevel=3,
            )
            opts = replace(opts, progress_triggers=tuple(progress_triggers))
        if fault_plan is not None:
            opts = replace(opts, fault_plan=fault_plan)
        if obs is not None:
            opts = replace(opts, obs=obs)
        return opts


def _resolve_device(machine: Machine, dataset: Dataset):
    """The CSD a program offloads to: the one holding its dataset.

    Stores the dataset on the primary device if no attached CSD holds
    it yet.
    """
    for device in machine.csds:
        if device.holds_dataset(dataset.name):
            return device
    machine.csd.store_dataset(dataset.name, dataset.raw_bytes)
    return machine.csd


def run_plan(
    machine: Machine,
    program: Program,
    plan: Plan,
    dataset: Dataset,
    mode: ExecutionMode,
    migration_enabled: bool = False,
    progress_triggers: Sequence[ProgressTrigger] = (),
    config: Optional[SystemConfig] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> ExecutionResult:
    """Compile and execute an externally supplied plan.

    Shared helper for the baselines (which bring their own plans) and
    ablations; charges compile cost per the mode and runs the executor
    against the device holding the dataset.  ``fault_plan`` arms
    deterministic fault injection before execution.
    """
    device = _resolve_device(machine, dataset)
    injector = None
    if fault_plan is not None and len(fault_plan) > 0:
        injector = FaultInjector(machine, fault_plan)
        injector.arm()
    generator = CodeGenerator(config if config is not None else machine.config)
    compiled = generator.generate(machine, program, plan, mode=mode, device=device)
    executor = PlanExecutor(
        machine, migration_enabled=migration_enabled, device=device,
        fault_log=injector.log if injector is not None else None,
    )
    return executor.execute(
        compiled, n_records=dataset.n_records, progress_triggers=progress_triggers
    )
