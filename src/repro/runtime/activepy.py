"""The ActivePy facade: the framework's public entry point.

A user hands over an unannotated program and its dataset; ActivePy does
the rest (paper Figure 3): sampling, curve fitting, Equation-1-driven
planning, code generation for both units, and monitored execution with
dynamic migration.  The report returned exposes every intermediate so
experiments and tests can audit each stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..analysis.timeline import ExecutionTimeline
from ..config import DEFAULT_CONFIG, SystemConfig
from ..faults import FaultInjector, FaultPlan
from ..hw.topology import Machine, build_machine
from ..lang.dataset import Dataset
from ..lang.program import Program
from .codegen import CodeGenerator, CompiledProgram, ExecutionMode
from .estimator import LineEstimate, build_estimates
from .executor import ExecutionResult, PlanExecutor, ProgressTrigger
from .planner import Plan, assign_csd_code
from .sampling import SamplingPhase, SamplingReport


@dataclass
class ActivePyReport:
    """Everything one ActivePy run produced, stage by stage."""

    program_name: str
    sampling: SamplingReport
    estimates: List[LineEstimate]
    plan: Plan
    compiled: CompiledProgram
    result: ExecutionResult
    #: End-to-end simulated seconds: sampling + compile + execution.
    total_seconds: float
    #: Span trace of the run (None unless requested).
    timeline: Optional[ExecutionTimeline] = None

    @property
    def execution_seconds(self) -> float:
        return self.result.total_seconds

    @property
    def overhead_seconds(self) -> float:
        """Sampling + code-generation cost (the paper's ~0.1 s claim)."""
        return self.total_seconds - self.result.total_seconds


class ActivePy:
    """The runtime framework.

    Parameters
    ----------
    config:
        Platform parameters; defaults to the paper-calibrated platform.
    migration_enabled:
        The full-fledged framework migrates; the paper's "ActivePy w/o
        migration" ablation sets this to False.
    """

    def __init__(
        self,
        config: SystemConfig = DEFAULT_CONFIG,
        migration_enabled: bool = True,
    ) -> None:
        self.config = config
        self.migration_enabled = migration_enabled
        self._sampling_phase = SamplingPhase(config)
        self._codegen = CodeGenerator(config)

    def run(
        self,
        program: Program,
        dataset: Dataset,
        machine: Optional[Machine] = None,
        progress_triggers: Sequence[ProgressTrigger] = (),
        trace: bool = False,
        fault_plan: Optional[FaultPlan] = None,
    ) -> ActivePyReport:
        """Run an unannotated program end to end.

        ``progress_triggers`` is experiment machinery: throttle the CSE
        when the offloaded work crosses a progress fraction, as the
        paper does for its migration study (Figure 5).  With ``trace``
        the report carries an :class:`ExecutionTimeline` of every span.
        ``fault_plan`` arms deterministic fault injection
        (:mod:`repro.faults`) before execution; injected faults and the
        runtime's recovery actions land on ``result.fault_events``.
        """
        if machine is None:
            machine = build_machine(self.config)
        device = _resolve_device(machine, dataset)

        injector = None
        if fault_plan is not None and len(fault_plan) > 0:
            injector = FaultInjector(machine, fault_plan)
            injector.arm()

        timeline = ExecutionTimeline() if trace else None
        start = machine.now

        # 1. Sampling phase: run the program on scaled sample inputs.
        sampling = self._sampling_phase.run(program, dataset)
        machine.simulator.clock.advance(sampling.sampling_seconds)
        if timeline is not None:
            timeline.record(start, machine.now, "host", "sampling", "sampling-phase")

        # 2. Extrapolate to the raw input; calibrate C from the device's
        #    performance counters.
        estimates = build_estimates(
            sampling,
            full_records=dataset.n_records,
            config=self.config,
            device_counters=device.cse.read_performance_counters(),
        )

        # 3. Algorithm 1: pick the CSD code regions.
        plan = assign_csd_code(estimates, self.config)

        # 4. Generate machine code for both units and distribute it.
        compile_start = machine.now
        compiled = self._codegen.generate(
            machine, program, plan, mode=ExecutionMode.ACTIVEPY, device=device
        )
        if timeline is not None:
            timeline.record(compile_start, machine.now, "host", "compile", "codegen")

        # 5. Execute with runtime monitoring (and migration, if enabled).
        executor = PlanExecutor(
            machine, migration_enabled=self.migration_enabled,
            timeline=timeline, device=device,
            fault_log=injector.log if injector is not None else None,
        )
        result = executor.execute(
            compiled, n_records=dataset.n_records, progress_triggers=progress_triggers
        )

        return ActivePyReport(
            program_name=program.name,
            sampling=sampling,
            estimates=estimates,
            plan=plan,
            compiled=compiled,
            result=result,
            total_seconds=machine.now - start,
            timeline=timeline,
        )


def _resolve_device(machine: Machine, dataset: Dataset):
    """The CSD a program offloads to: the one holding its dataset.

    Stores the dataset on the primary device if no attached CSD holds
    it yet.
    """
    for device in machine.csds:
        if device.holds_dataset(dataset.name):
            return device
    machine.csd.store_dataset(dataset.name, dataset.raw_bytes)
    return machine.csd


def run_plan(
    machine: Machine,
    program: Program,
    plan: Plan,
    dataset: Dataset,
    mode: ExecutionMode,
    migration_enabled: bool = False,
    progress_triggers: Sequence[ProgressTrigger] = (),
    config: Optional[SystemConfig] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> ExecutionResult:
    """Compile and execute an externally supplied plan.

    Shared helper for the baselines (which bring their own plans) and
    ablations; charges compile cost per the mode and runs the executor
    against the device holding the dataset.  ``fault_plan`` arms
    deterministic fault injection before execution.
    """
    device = _resolve_device(machine, dataset)
    injector = None
    if fault_plan is not None and len(fault_plan) > 0:
        injector = FaultInjector(machine, fault_plan)
        injector.arm()
    generator = CodeGenerator(config if config is not None else machine.config)
    compiled = generator.generate(machine, program, plan, mode=mode, device=device)
    executor = PlanExecutor(
        machine, migration_enabled=migration_enabled, device=device,
        fault_log=injector.log if injector is not None else None,
    )
    return executor.execute(
        compiled, n_records=dataset.n_records, progress_triggers=progress_triggers
    )
