"""Plan explainability: predicted vs. measured time, per line.

The planner commits to a host/CSD split on the strength of Eq. 1's
per-line estimates; the monitor later migrates work when reality
disagrees.  This module puts the two side by side so every run can
answer *"did the prediction hold, and where did it break?"*:

* each line's **predicted** seconds — the exact contribution that line
  makes to the planner's projected total (:func:`~repro.runtime.planner.
  projected_time`): compute at its assigned location plus the D2H
  input transfer when the line sits on a location boundary;
* each line's **measured** seconds from the executor's
  :class:`~repro.runtime.executor.LineTiming`;
* the prediction error, absolute and relative, plus a migration audit
  trail (what the monitor saw, what remaining-time projections won).

The final device→host output transfer is predicted by the planner but
executed *after* the last line's timing window closes, so it is kept
as an explicit separate term (``predicted_final_transfer_seconds``)
rather than smeared into the last line's error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from ..config import SystemConfig
from ..errors import ProgramError
from .executor import ExecutionResult
from .planner import CSD, Plan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .plansearch import SearchReport

__all__ = ["LineExplanation", "PlanExplanation", "explain_plan"]

#: Relative-error buckets for the per-line prediction-error histogram.
PREDICTION_ERROR_BUCKETS = (0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 4.0)


@dataclass(frozen=True)
class LineExplanation:
    """One line's predicted cost next to what actually happened."""

    index: int
    name: str
    planned_location: str
    actual_location: str
    predicted_seconds: float
    measured_seconds: float
    migrated_mid_line: bool = False

    @property
    def error_seconds(self) -> float:
        """Measured minus predicted (positive = ran slower than planned)."""
        return self.measured_seconds - self.predicted_seconds

    @property
    def relative_error(self) -> float:
        """``|error|`` relative to the prediction (0.0 when both are 0)."""
        if self.predicted_seconds <= 0.0:
            return 0.0 if self.measured_seconds <= 0.0 else float("inf")
        return abs(self.error_seconds) / self.predicted_seconds

    @property
    def held(self) -> bool:
        """True when the line ran where the planner put it, unmigrated."""
        return (
            self.planned_location == self.actual_location
            and not self.migrated_mid_line
        )


@dataclass
class PlanExplanation:
    """The planner's prediction laid against the measured run."""

    program_name: str
    lines: List[LineExplanation]
    #: The planner's projected total for the chosen plan (T_csd).
    predicted_total_seconds: float
    #: The executor's measured total for the same window.
    measured_total_seconds: float
    #: The final device→host output transfer the planner budgets but
    #: line timings exclude (0.0 for plans ending on the host).
    predicted_final_transfer_seconds: float = 0.0
    #: One entry per migration: the audit trail of why the runtime
    #: overrode the plan mid-line.
    migration_audit: List[Dict[str, object]] = None  # set in __post_init__
    #: Which planner produced the plan ("greedy", "search", "external").
    plan_origin: str = "greedy"
    #: For search plans: how the branch-and-bound's choice differs from
    #: greedy Algorithm 1 and what it bought (None for greedy plans).
    #: Keys: greedy_assignments, search_assignments, greedy_makespan_s,
    #: search_makespan_s, improvement_fraction, changed_lines,
    #: search_cache_hit.
    search_diff: Optional[Dict[str, object]] = None

    def __post_init__(self) -> None:
        if self.migration_audit is None:
            self.migration_audit = []

    @property
    def total_error_seconds(self) -> float:
        return self.measured_total_seconds - self.predicted_total_seconds

    @property
    def max_relative_error(self) -> float:
        return max((line.relative_error for line in self.lines), default=0.0)

    @property
    def plan_held(self) -> bool:
        """True when every line ran where the planner placed it."""
        return all(line.held for line in self.lines)

    def worst_lines(self, n: int = 3) -> List[LineExplanation]:
        """Lines ranked by relative prediction error, worst first."""
        return sorted(
            self.lines, key=lambda line: (-line.relative_error, line.index)
        )[:n]

    def render(self) -> str:
        lines = [
            f"plan explanation for {self.program_name!r} "
            f"(origin: {self.plan_origin}): "
            f"predicted {self.predicted_total_seconds:.6f} s, "
            f"measured {self.measured_total_seconds:.6f} s "
            f"({self.total_error_seconds:+.6f} s)"
        ]
        if self.search_diff is not None:
            diff = self.search_diff
            changed = diff.get("changed_lines") or []
            if changed:
                moves = ", ".join(
                    f"{name}: {a}->{b}" for _, name, a, b in changed
                )
                lines.append(
                    f"  search beat greedy by "
                    f"{100 * float(diff['improvement_fraction']):.1f}% "
                    f"({float(diff['greedy_makespan_s']):.6f} s -> "
                    f"{float(diff['search_makespan_s']):.6f} s) by moving "
                    f"{moves}"
                )
            else:
                lines.append(
                    "  search confirmed greedy's plan is optimal "
                    f"(speculative makespan "
                    f"{float(diff['search_makespan_s']):.6f} s)"
                )
        header = (
            f"  {'line':<16} {'plan':<6} {'ran':<6} "
            f"{'predicted':>12} {'measured':>12} {'error':>12}"
        )
        lines.append(header)
        for line in self.lines:
            marker = " *migrated" if line.migrated_mid_line else ""
            lines.append(
                f"  {line.name:<16} {line.planned_location:<6} "
                f"{line.actual_location:<6} {line.predicted_seconds:>12.6f} "
                f"{line.measured_seconds:>12.6f} "
                f"{line.error_seconds:>+12.6f}{marker}"
            )
        if self.predicted_final_transfer_seconds > 0:
            lines.append(
                f"  {'(final d2h)':<16} {'csd':<6} {'-':<6} "
                f"{self.predicted_final_transfer_seconds:>12.6f}"
            )
        for audit in self.migration_audit:
            lines.append(
                f"  migration @{audit['sim_time']:.6f}s line "
                f"{audit['line_name']}: {audit['reason']} "
                f"(device {audit['projected_device_seconds']:.6f} s vs "
                f"host {audit['projected_host_seconds']:.6f} s)"
            )
        return "\n".join(lines)

    def summary(self) -> Dict[str, object]:
        return {
            "program": self.program_name,
            "plan_origin": self.plan_origin,
            "predicted_total_seconds": self.predicted_total_seconds,
            "measured_total_seconds": self.measured_total_seconds,
            "total_error_seconds": self.total_error_seconds,
            "max_relative_error": self.max_relative_error,
            "plan_held": self.plan_held,
            "migrations": len(self.migration_audit),
        }

    def to_jsonable(self) -> Dict[str, object]:
        return {
            **self.summary(),
            "predicted_final_transfer_seconds":
                self.predicted_final_transfer_seconds,
            "lines": [
                {
                    "index": line.index,
                    "name": line.name,
                    "planned_location": line.planned_location,
                    "actual_location": line.actual_location,
                    "predicted_seconds": line.predicted_seconds,
                    "measured_seconds": line.measured_seconds,
                    "error_seconds": line.error_seconds,
                    "relative_error": line.relative_error,
                    "migrated_mid_line": line.migrated_mid_line,
                }
                for line in self.lines
            ],
            "migration_audit": [dict(audit) for audit in self.migration_audit],
            "search_diff": (
                dict(self.search_diff) if self.search_diff is not None else None
            ),
        }


def predicted_line_seconds(plan: Plan, config: SystemConfig) -> List[float]:
    """Each line's contribution to the planner's projected total.

    Mirrors :func:`~repro.runtime.planner.projected_time` term by term
    (compute at the assigned location, input transfer on location
    boundaries) *except* the trailing output transfer, which is
    returned separately by :func:`explain_plan`.  The invariant
    ``sum(lines) + final_transfer == projected_time(...)`` is asserted
    by tests.
    """
    bw = config.bw_d2h
    out: List[float] = []
    assignments = plan.assignments
    for i, (where, line) in enumerate(zip(assignments, plan.estimates)):
        seconds = line.ct_device if where == CSD else line.ct_host
        if i > 0 and assignments[i - 1] != where:
            seconds += line.d_in / bw
        out.append(seconds)
    return out


def explain_plan(
    plan: Plan,
    result: ExecutionResult,
    config: SystemConfig,
    search: Optional["SearchReport"] = None,
) -> PlanExplanation:
    """Join the plan's per-line predictions with the measured timings.

    ``search`` attaches plan provenance for branch-and-bound plans
    (:mod:`repro.runtime.plansearch`): the explanation then carries an
    explicit diff against what greedy Algorithm 1 would have chosen —
    which lines moved and how many speculative seconds the move bought.
    Per-line *predictions* stay Eq.-1 terms either way; a search plan's
    predicted **total** is its measured speculative makespan, which is
    why search runs explain with near-zero total error.
    """
    if not plan.estimates:
        raise ProgramError("cannot explain a plan without line estimates")
    predicted = predicted_line_seconds(plan, config)
    timings = {t.index: t for t in result.line_timings}
    lines: List[LineExplanation] = []
    for i, seconds in enumerate(predicted):
        timing = timings.get(i)
        lines.append(
            LineExplanation(
                index=i,
                name=plan.estimates[i].name,
                planned_location=plan.assignments[i],
                actual_location=(
                    timing.actual_location if timing is not None else "skipped"
                ),
                predicted_seconds=seconds,
                measured_seconds=timing.seconds if timing is not None else 0.0,
                migrated_mid_line=(
                    timing.migrated_mid_line if timing is not None else False
                ),
            )
        )
    final_transfer = 0.0
    if plan.assignments and plan.assignments[-1] == CSD:
        final_transfer = plan.estimates[-1].d_out / config.bw_d2h
    audit = [
        {
            "line_index": event.line_index,
            "line_name": event.line_name,
            "chunk": event.chunk,
            "sim_time": event.sim_time,
            "reason": event.reason,
            "cost_seconds": event.cost_seconds,
            "projected_device_seconds": event.projected_device_seconds,
            "projected_host_seconds": event.projected_host_seconds,
            "resume_chunk": event.resume_chunk,
        }
        for event in result.migrations
    ]
    search_diff: Optional[Dict[str, object]] = None
    if search is not None:
        search_diff = {
            "greedy_assignments": list(search.greedy_plan.assignments),
            "search_assignments": list(search.plan.assignments),
            "greedy_makespan_s": search.greedy_makespan_s,
            "search_makespan_s": search.makespan_s,
            "improvement_fraction": search.improvement_fraction,
            "changed_lines": [list(entry) for entry in search.changed_lines()],
            "search_cache_hit": search.cache_hit,
        }
    return PlanExplanation(
        program_name=result.program_name,
        lines=lines,
        predicted_total_seconds=plan.t_csd,
        measured_total_seconds=result.total_seconds,
        predicted_final_transfer_seconds=final_transfer,
        migration_audit=audit,
        plan_origin=plan.origin,
        search_diff=search_diff,
    )
