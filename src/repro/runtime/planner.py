"""Algorithm 1: CSD code assignment.

A faithful implementation of the paper's greedy, line-granularity
assignment.  Starting from everything-on-host, walk the lines in
program order; adding line ``L_i`` to the CSD set changes the projected
time by

* ``- CT_i,host + CT_i,device`` (the compute moves), and
* a transfer correction: if the *previous* line already runs on the
  CSD (or ``i == 0``), the line's input no longer crosses the link, so
  ``- D_in/BW_D2H``; otherwise the input must now be shipped to the
  device, ``+ D_in/BW_D2H``.  Either way the line's output must come
  back, ``+ D_out/BW_D2H`` (refunded later if the next line joins too).

Accept the move whenever it lowers the projected time.  The result is
the coarse-grained split the paper argues for: fine-grained scatter
would pay the narrow interconnect on every boundary.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Sequence

from ..config import SystemConfig
from ..errors import PlanningError
from .estimator import LineEstimate

HOST = "host"
CSD = "csd"

#: Where a plan came from: the paper's greedy Algorithm 1, the
#: branch-and-bound search (:mod:`repro.runtime.plansearch`), or a
#: caller-supplied assignment (baselines, replayed JSON).
PLAN_ORIGINS = ("greedy", "search", "external")


@dataclass
class Plan:
    """A host/CSD assignment for every line of a program."""

    assignments: List[str]
    #: Projected all-host execution time (the algorithm's T_host).
    t_host: float
    #: Projected execution time under this plan (the algorithm's T_csd).
    t_csd: float
    estimates: Sequence[LineEstimate] = field(default=(), repr=False)
    #: Which planner produced this assignment (see :data:`PLAN_ORIGINS`).
    origin: str = "greedy"

    def __post_init__(self) -> None:
        bad = [a for a in self.assignments if a not in (HOST, CSD)]
        if bad:
            raise PlanningError(f"invalid assignment values: {bad}")
        if self.origin not in PLAN_ORIGINS:
            raise PlanningError(
                f"invalid plan origin {self.origin!r}; expected one of "
                f"{PLAN_ORIGINS}"
            )

    @property
    def csd_lines(self) -> List[int]:
        return [i for i, a in enumerate(self.assignments) if a == CSD]

    @property
    def host_lines(self) -> List[int]:
        return [i for i, a in enumerate(self.assignments) if a == HOST]

    @property
    def uses_csd(self) -> bool:
        return any(a == CSD for a in self.assignments)

    @property
    def projected_speedup(self) -> float:
        if self.t_csd <= 0:
            return 1.0
        return self.t_host / self.t_csd

    def location_of(self, index: int) -> str:
        return self.assignments[index]

    # --- serialisation (mirrors FaultPlan's to/from_jsonable) ---------------

    def to_jsonable(self) -> Dict[str, Any]:
        """A JSON-ready view that :meth:`from_jsonable` inverts exactly.

        Floats survive the round trip bit-for-bit (JSON ``repr`` is
        exact for IEEE doubles), so a cached or replayed plan is
        indistinguishable from the original — the property the profile
        cache's warm-run shortcut rests on.
        """
        return {
            "schema": "repro-plan/1",
            "assignments": list(self.assignments),
            "t_host": self.t_host,
            "t_csd": self.t_csd,
            "origin": self.origin,
            "estimates": [asdict(e) for e in self.estimates],
        }

    @classmethod
    def from_jsonable(cls, payload: Dict[str, Any]) -> "Plan":
        """Rebuild a plan serialised by :meth:`to_jsonable`."""
        if not isinstance(payload, dict):
            raise PlanningError(
                f"plan payload must be a dict, got {type(payload).__name__}"
            )
        if payload.get("schema") != "repro-plan/1":
            raise PlanningError(
                f"unknown plan schema {payload.get('schema')!r}"
            )
        try:
            estimates = tuple(
                LineEstimate(**entry) for entry in payload["estimates"]
            )
            return cls(
                assignments=[str(a) for a in payload["assignments"]],
                t_host=float(payload["t_host"]),
                t_csd=float(payload["t_csd"]),
                estimates=estimates,
                origin=str(payload.get("origin", "external")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise PlanningError(f"malformed plan payload: {exc}") from exc


def host_only_plan(estimates: Sequence[LineEstimate]) -> Plan:
    """The trivial plan: every line on the host."""
    t_host = sum(e.ct_host for e in estimates)
    return Plan(
        assignments=[HOST] * len(estimates),
        t_host=t_host,
        t_csd=t_host,
        estimates=tuple(estimates),
    )


def assign_csd_code(estimates: Sequence[LineEstimate], config: SystemConfig) -> Plan:
    """Run Algorithm 1 over per-line estimates.

    Returns the resulting :class:`Plan`; the projected time ``t_csd``
    is what the runtime later holds the device accountable to.
    """
    if not estimates:
        raise PlanningError("cannot plan an empty program")
    indices = [e.index for e in estimates]
    if indices != list(range(len(estimates))):
        raise PlanningError(f"line estimates must be dense and ordered, got {indices}")
    if not config.csd_enabled:
        # A plain SSD: no compute engines to offload to, so the walk
        # below could never accept a move.  Short-circuit to all-host.
        return host_only_plan(estimates)

    bw = config.bw_d2h
    t_host = sum(e.ct_host for e in estimates)
    t_csd = t_host
    assignments = [HOST] * len(estimates)

    for i, line in enumerate(estimates):
        previous_on_csd = i == 0 or assignments[i - 1] == CSD
        if previous_on_csd:
            t_candidate = (
                t_csd - line.ct_host + line.ct_device
                - line.d_in / bw + line.d_out / bw
            )
        else:
            t_candidate = (
                t_csd - line.ct_host + line.ct_device
                + line.d_in / bw + line.d_out / bw
            )
        if t_candidate < t_csd <= t_host:
            assignments[i] = CSD
            t_csd = t_candidate

    return Plan(
        assignments=assignments,
        t_host=t_host,
        t_csd=t_csd,
        estimates=tuple(estimates),
    )


def projected_time(
    assignments: Sequence[str],
    estimates: Sequence[LineEstimate],
    config: SystemConfig,
) -> float:
    """Projected execution time of an arbitrary assignment.

    Shared by the planner's tests and the programmer-directed baseline:
    sums per-line times at each line's location plus one D2H transfer
    for every boundary crossing in the chain.
    """
    if len(assignments) != len(estimates):
        raise PlanningError(
            f"{len(assignments)} assignments for {len(estimates)} lines"
        )
    bw = config.bw_d2h
    total = 0.0
    for i, (where, line) in enumerate(zip(assignments, estimates)):
        total += line.ct_device if where == CSD else line.ct_host
        if i > 0 and assignments[i - 1] != where:
            total += line.d_in / bw
    # The final value must end up at the host.
    if assignments and assignments[-1] == CSD:
        total += estimates[-1].d_out / bw
    return total
