"""Co-scheduling two ActivePy programs on one CSD.

The paper's Figure 5 stress "execut[es] similar workloads right after
each application's ISP tasks make 50% of their progress to simulate a
situation where the CSD must load multiple tasks".  This module models
that situation symmetrically: two programs share one device, and each
sees the engine at reduced availability while the *other* is using it.

The interference model is profile-based (and documented as such): each
program first runs solo to obtain its CSD busy profile; then each runs
again with the other's profile applied as scheduled availability
windows (both get ``shared_availability`` while the windows overlap
their execution).  Each co-run is a full ActivePy run — sampling,
planning, monitoring — so a program whose share collapses migrates to
the host exactly as it would under any other contention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..config import DEFAULT_CONFIG, SystemConfig
from ..errors import ReproError
from ..hw.topology import build_machine
from ..lang.dataset import Dataset
from ..lang.program import Program
from .activepy import ActivePy, ActivePyReport, RunOptions


@dataclass(frozen=True)
class BusyWindow:
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class CoScheduleResult:
    """Outcome for one pair of co-located programs."""

    solo: Tuple[ActivePyReport, ActivePyReport]
    shared: Tuple[ActivePyReport, ActivePyReport]

    def slowdown(self, index: int) -> float:
        """How much co-location cost program ``index``."""
        return (
            self.shared[index].total_seconds / self.solo[index].total_seconds
        )

    @property
    def migrations(self) -> Tuple[int, int]:
        return (
            len(self.shared[0].result.migrations),
            len(self.shared[1].result.migrations),
        )


def csd_busy_windows(report: ActivePyReport) -> List[BusyWindow]:
    """The CSD busy intervals of a traced run."""
    if report.timeline is None:
        raise ReproError("csd_busy_windows needs a run with trace=True")
    windows = [
        BusyWindow(span.start, span.end)
        for span in report.timeline.spans
        if span.kind == "compute" and span.resource.startswith("csd")
    ]
    return sorted(windows, key=lambda w: w.start)


def _run_solo(
    program: Program, dataset: Dataset, config: SystemConfig
) -> ActivePyReport:
    machine = build_machine(config)
    return ActivePy(config).run(
        program, dataset, machine=machine, options=RunOptions(trace=True),
    )


def _run_against(
    program: Program,
    dataset: Dataset,
    other_windows: List[BusyWindow],
    config: SystemConfig,
    shared_availability: float,
) -> ActivePyReport:
    machine = build_machine(config)
    now = machine.now
    for window in other_windows:
        if window.end <= now:
            continue
        machine.csd.cse.schedule_availability(
            max(window.start, now), shared_availability
        )
        machine.csd.cse.schedule_availability(window.end, 1.0)
    return ActivePy(config).run(
        program, dataset, machine=machine, options=RunOptions(trace=True),
    )


def coschedule_pair(
    first: Tuple[Program, Dataset],
    second: Tuple[Program, Dataset],
    config: SystemConfig = DEFAULT_CONFIG,
    shared_availability: float = 0.5,
    stagger_seconds: Optional[float] = None,
) -> CoScheduleResult:
    """Run two programs solo and co-located on one CSD.

    ``shared_availability`` is each program's engine share while the
    other's offloaded work is active (0.5 = fair sharing).
    ``stagger_seconds`` delays the second program's busy profile; the
    default staggers it to when the first reaches 50% of its CSD work,
    reproducing the paper's trigger point.
    """
    if not 0 < shared_availability < 1:
        raise ReproError(
            f"shared_availability must lie in (0, 1), got {shared_availability}"
        )
    solo_first = _run_solo(*first, config=config)
    solo_second = _run_solo(*second, config=config)

    first_windows = csd_busy_windows(solo_first)
    second_windows = csd_busy_windows(solo_second)
    if stagger_seconds is None:
        busy_total = sum(w.duration for w in first_windows)
        elapsed = 0.0
        stagger_seconds = first_windows[-1].end if first_windows else 0.0
        for window in first_windows:
            if elapsed + window.duration >= busy_total / 2:
                stagger_seconds = window.start + (busy_total / 2 - elapsed)
                break
            elapsed += window.duration
    staggered_second = [
        BusyWindow(w.start + stagger_seconds, w.end + stagger_seconds)
        for w in second_windows
    ]

    shared_first = _run_against(
        *first, other_windows=staggered_second,
        config=config, shared_availability=shared_availability,
    )
    shared_second = _run_against(
        *second, other_windows=first_windows,
        config=config, shared_availability=shared_availability,
    )
    return CoScheduleResult(
        solo=(solo_first, solo_second),
        shared=(shared_first, shared_second),
    )
