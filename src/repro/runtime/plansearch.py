"""Branching plan search: branch-and-bound over forked simulator states.

The paper's Algorithm 1 is a single greedy pass over Equation 1's
*fitted* per-line estimates, and it inherits every extrapolation error
the sampling phase makes: §V's CSR case study (``pagerank``,
``sparsemv``) over-predicts an output volume ~2.4x because power-law
sample prefixes genuinely look denser than the population, so greedy
conservatively keeps the conversion on the host while the oracle
offloads it.  No amount of re-fitting at sample scale recovers this —
the bend in the volume curve is simply not observable from prefixes.

This module takes the other door the array engine opened (PR 8's O(1)
copy-on-write :meth:`~repro.sim.Simulator.snapshot` /
:meth:`~repro.sim.Simulator.restore`): instead of *modelling* a
candidate assignment, **speculatively execute it on a forked simulator
state** and read the clock.  The search is a priority-queue
branch-and-bound over partial host/CSD assignments:

* every node extension is simulated exactly once on a fork of the
  speculative machine (the fault-free stepper
  :meth:`~repro.runtime.executor.PlanExecutor.run_line_clean`), never
  re-run — the (line, location, input-crossing) step space is shared
  by all branches, which is the transposition table's currency;
* nodes are ordered by ``elapsed + lower_bound(remaining)`` where the
  remaining-work bound folds each remaining line's cheapest measured
  step — admissible by construction (transfers are nonnegative and
  float addition is monotone), the invariant
  ``tests/test_plansearch.py`` re-checks with Hypothesis;
* dominance pruning runs on (depth, value-location): two prefixes that
  leave the live value on the same unit are interchangeable for the
  future, so only the cheaper one survives (``memo_hits``);
* the incumbent is seeded with greedy's leaf, so the search **provably
  never returns a worse speculative makespan than Algorithm 1** —
  improvements must be strict, ties keep greedy's plan bit-for-bit;
* ``beam_width`` caps expansions per depth and ``workers > 1``
  evaluates the speculative step space on
  :mod:`repro.parallel`'s deterministic order-preserving pool —
  bit-identical plan *and* metrics to ``workers == 1``, since the pool
  only changes who runs the (deterministic) simulations.

The cost-callable firewall stays intact: nothing here reads a
statement's ground-truth cost model.  The search *measures* candidate
prefixes by dry-running them in the simulator — the in-simulation
analogue of speculative execution on the real device — which is
precisely how it escapes the §V extrapolation trap.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..config import SystemConfig
from ..errors import PlanningError
from ..hw.topology import Machine, build_machine
from ..lang.dataset import Dataset
from ..lang.program import Program
from ..obs import Observability
from .codegen import CodeGenerator, ExecutionMode
from .estimator import LineEstimate
from .executor import PlanExecutor
from .planner import CSD, HOST, Plan, assign_csd_code, host_only_plan

__all__ = [
    "SearchMetrics",
    "SearchOptions",
    "SearchReport",
    "estimate_priority",
    "search_plan",
]

#: A speculative step: line ``index`` runs at ``location`` with the
#: live value currently on ``value_location``.
_StepKey = Tuple[int, str, str]

#: Sentinel index for the final device→host readback steps.
_FINAL = -1


@dataclass(frozen=True)
class SearchOptions:
    """Knobs of one branch-and-bound search."""

    #: Maximum nodes expanded per depth (``None`` = unbounded).  The
    #: greedy incumbent is independent of the beam, so any width still
    #: returns a plan no worse than Algorithm 1.
    beam_width: Optional[int] = None
    #: Worker processes evaluating the speculative step space.  The
    #: search itself is sequential arithmetic over the (deterministic)
    #: step costs, so any worker count returns bit-identical results.
    workers: int = 1
    #: Hard cap on expanded nodes (a 2^k tree for k lines never gets
    #: near this; the cap bounds adversarial inputs).
    max_nodes: int = 65536

    def digest_token(self) -> str:
        """A canonical token for cache keys (wall-clock knobs excluded)."""
        return f"beam={self.beam_width!r}"


@dataclass
class SearchMetrics:
    """What the search did, for ``plansearch.*`` observability."""

    nodes_expanded: int = 0
    nodes_pruned: int = 0
    memo_hits: int = 0
    #: Distinct speculative line-steps simulated (the step space).
    steps_simulated: int = 0
    #: Host wall-clock seconds the search took (excluded from the
    #: workers=N == workers=1 identity — it is the one field that
    #: legitimately differs).
    wall_seconds: float = 0.0
    #: Every incumbent improvement: (nodes_expanded_at, makespan,
    #: assignments) — seeded with greedy's leaf at node 0.
    incumbent_trajectory: List[Tuple[int, float, Tuple[str, ...]]] = field(
        default_factory=list
    )

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "nodes_expanded": self.nodes_expanded,
            "nodes_pruned": self.nodes_pruned,
            "memo_hits": self.memo_hits,
            "steps_simulated": self.steps_simulated,
            "wall_seconds": self.wall_seconds,
            "incumbent_trajectory": [
                {
                    "nodes_expanded": at,
                    "makespan_s": makespan,
                    "assignments": list(assignments),
                }
                for at, makespan, assignments in self.incumbent_trajectory
            ],
        }

    @classmethod
    def from_jsonable(cls, payload: Dict[str, Any]) -> "SearchMetrics":
        return cls(
            nodes_expanded=int(payload["nodes_expanded"]),
            nodes_pruned=int(payload["nodes_pruned"]),
            memo_hits=int(payload["memo_hits"]),
            steps_simulated=int(payload["steps_simulated"]),
            wall_seconds=float(payload["wall_seconds"]),
            incumbent_trajectory=[
                (
                    int(entry["nodes_expanded"]),
                    float(entry["makespan_s"]),
                    tuple(str(a) for a in entry["assignments"]),
                )
                for entry in payload["incumbent_trajectory"]
            ],
        )


@dataclass
class SearchReport:
    """Outcome of one plan search, greedy baseline included."""

    plan: Plan
    greedy_plan: Plan
    #: Speculative (fault-free simulated) makespan of the chosen plan.
    makespan_s: float
    #: Speculative makespan of greedy's plan — the seeded incumbent.
    greedy_makespan_s: float
    metrics: SearchMetrics
    #: True when the plan came from the profile cache and the search
    #: itself was skipped entirely.
    cache_hit: bool = False

    @property
    def beat_greedy(self) -> bool:
        return self.plan.assignments != self.greedy_plan.assignments

    @property
    def improvement_fraction(self) -> float:
        """How much of greedy's makespan the search shaved off."""
        if self.greedy_makespan_s <= 0:
            return 0.0
        return 1.0 - self.makespan_s / self.greedy_makespan_s

    def changed_lines(self) -> List[Tuple[int, str, str, str]]:
        """(index, name, greedy_location, search_location) per diff."""
        out = []
        names = {e.index: e.name for e in self.plan.estimates}
        for i, (a, b) in enumerate(
            zip(self.greedy_plan.assignments, self.plan.assignments)
        ):
            if a != b:
                out.append((i, names.get(i, f"line{i}"), a, b))
        return out

    def publish(self, obs: Observability) -> None:
        """Emit ``plansearch.*`` metrics onto an observability handle."""
        if not obs.enabled:
            return
        metrics = obs.metrics
        metrics.counter("plansearch.nodes_expanded").inc(
            self.metrics.nodes_expanded
        )
        metrics.counter("plansearch.nodes_pruned").inc(self.metrics.nodes_pruned)
        metrics.counter("plansearch.memo_hits").inc(self.metrics.memo_hits)
        metrics.counter("plansearch.steps_simulated").inc(
            self.metrics.steps_simulated
        )
        if self.cache_hit:
            metrics.counter("plansearch.cache_hit").inc()
        metrics.counter("plansearch.incumbent_improvements").inc(
            max(0, len(self.metrics.incumbent_trajectory) - 1)
        )
        metrics.gauge("plansearch.makespan_s").set(self.makespan_s)
        metrics.gauge("plansearch.greedy_makespan_s").set(self.greedy_makespan_s)
        metrics.gauge("plansearch.improvement_fraction").set(
            self.improvement_fraction
        )

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "plan": self.plan.to_jsonable(),
            "greedy_plan": self.greedy_plan.to_jsonable(),
            "makespan_s": self.makespan_s,
            "greedy_makespan_s": self.greedy_makespan_s,
            "beat_greedy": self.beat_greedy,
            "improvement_fraction": self.improvement_fraction,
            "cache_hit": self.cache_hit,
            "metrics": self.metrics.to_jsonable(),
        }

    @classmethod
    def from_jsonable(cls, payload: Dict[str, Any]) -> "SearchReport":
        """Rebuild a report serialised by :meth:`to_jsonable`.

        Floats round-trip exactly through JSON ``repr``, so a
        cache-served report carries the same makespans bit for bit —
        what lets warm runs skip the search without changing any
        simulated outcome.
        """
        try:
            return cls(
                plan=Plan.from_jsonable(payload["plan"]),
                greedy_plan=Plan.from_jsonable(payload["greedy_plan"]),
                makespan_s=float(payload["makespan_s"]),
                greedy_makespan_s=float(payload["greedy_makespan_s"]),
                metrics=SearchMetrics.from_jsonable(payload["metrics"]),
                cache_hit=bool(payload.get("cache_hit", False)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise PlanningError(
                f"malformed search report payload: {exc}"
            ) from exc


def estimate_priority(estimates: Sequence[LineEstimate], depth: int) -> float:
    """Equation-1 optimistic remaining work from ``depth`` onward.

    The fitted-estimate heuristic that orders node expansion before
    measured steps exist: each remaining line costs at least its
    cheaper location, transfers optimistically free.  Ordering only —
    pruning always uses the measured bound, so a misfitted estimate
    (the §V trap) can delay exploration but never exclude the optimum.
    """
    return sum(
        min(e.ct_host, e.ct_device) for e in estimates[depth:]
    )


class _SpeculativeMachine:
    """A private machine the search dry-runs candidate prefixes on.

    Built once per search (and once per pool worker): a fresh
    fault-free machine with a disabled observability handle, every
    line's device binary installed, and a base snapshot taken after
    setup.  Each speculative step restores the base snapshot (O(1),
    copy-on-write), executes exactly one line through the real
    executor's fault-free stepper, and reads the elapsed simulated
    time off the clock.
    """

    def __init__(
        self, program: Program, dataset: Dataset, config: SystemConfig
    ) -> None:
        self.config = config
        self.n_records = dataset.n_records
        self.machine: Machine = build_machine(
            config, obs=Observability.disabled()
        )
        self.machine.csd.store_dataset(dataset.name, dataset.raw_bytes)
        k = len(program)
        # Install binaries for every line so any assignment is runnable;
        # with the CSD disabled nothing is ever dispatched to it.
        codegen_assignments = [CSD if config.csd_enabled else HOST] * k
        scaffold = Plan(
            assignments=codegen_assignments, t_host=0.0, t_csd=0.0,
            origin="external",
        )
        self.compiled = CodeGenerator(config).generate(
            self.machine, program, scaffold, mode=ExecutionMode.ACTIVEPY,
        )
        self.base = self.machine.simulator.snapshot()

    def step_seconds(self, key: _StepKey) -> float:
        """Simulated seconds of one line-step, measured on a fork."""
        index, location, value_location = key
        simulator = self.machine.simulator
        simulator.restore(self.base)
        executor = PlanExecutor(self.machine, migration_enabled=False)
        started = simulator.now
        if index == _FINAL:
            executor.finish_clean(self.compiled, self.n_records, value_location)
        else:
            executor.run_line_clean(
                self.compiled, self.n_records, index, location, value_location,
            )
        return simulator.now - started


#: Worker-side speculative machine for parallel step evaluation.  Set
#: by the parent before the pool forks (children inherit it) and by
#: the initializer otherwise — the same pattern as
#: :data:`repro.parallel._WORKER_HARNESS`.
_WORKER_SPEC: Optional[_SpeculativeMachine] = None
_WORKER_CONTEXT: Optional[Tuple[Program, Dataset, SystemConfig]] = None


def _init_step_worker() -> None:
    global _WORKER_SPEC
    if _WORKER_SPEC is None:
        if _WORKER_CONTEXT is None:  # pragma: no cover - parent always set it
            raise PlanningError("step worker started without a search context")
        _WORKER_SPEC = _SpeculativeMachine(*_WORKER_CONTEXT)


def _eval_step(key: _StepKey) -> float:
    if _WORKER_SPEC is None:  # pragma: no cover - initializer always ran
        raise PlanningError("step worker has no speculative machine")
    return _WORKER_SPEC.step_seconds(key)


def _step_space(k: int, locations: Sequence[str]) -> List[_StepKey]:
    """Every step the search could need, in canonical order."""
    keys: List[_StepKey] = []
    for index in range(k):
        for location in locations:
            for value_location in (HOST, CSD):
                keys.append((index, location, value_location))
    # Final readback only matters when the last line ends on the CSD.
    keys.append((_FINAL, HOST, CSD))
    return keys


def _measure_steps(
    spec: _SpeculativeMachine,
    keys: Sequence[_StepKey],
    workers: int,
    program: Program,
    dataset: Dataset,
    config: SystemConfig,
) -> Dict[_StepKey, float]:
    """Evaluate the step space, optionally across worker processes.

    The values are deterministic functions of (program, dataset,
    config) — every worker builds an identical speculative machine and
    simulations share no state — so the table, and with it the whole
    search, is bit-identical for any worker count.
    """
    global _WORKER_SPEC, _WORKER_CONTEXT
    if workers <= 1 or len(keys) < 2:
        return {key: spec.step_seconds(key) for key in keys}
    # Imported lazily: repro.parallel pulls the chaos harness, which
    # imports the runtime — a cycle at module-import time, not at call
    # time.
    from ..parallel import ordered_pool_map

    _WORKER_SPEC = spec
    _WORKER_CONTEXT = (program, dataset, config)
    try:
        values = ordered_pool_map(
            _eval_step,
            list(keys),
            workers=workers,
            initializer=_init_step_worker,
        )
    finally:
        _WORKER_SPEC = None
        _WORKER_CONTEXT = None
    return dict(zip(keys, values))


def _fold_bound(
    elapsed: float, cheapest: Sequence[float], depth: int
) -> float:
    """``elapsed`` plus the measured optimistic remainder from ``depth``.

    A left fold in line order, matching how leaf makespans accumulate:
    float addition is monotone, so term-wise ``cheapest[i] <= actual
    step`` makes the fold a true lower bound — exactly, not just to
    tolerance (the Hypothesis admissibility test asserts ``<=`` with no
    epsilon).
    """
    bound = elapsed
    for i in range(depth, len(cheapest)):
        bound += cheapest[i]
    return bound


def search_plan(
    program: Program,
    dataset: Dataset,
    estimates: Sequence[LineEstimate],
    config: SystemConfig,
    *,
    options: Optional[SearchOptions] = None,
    greedy: Optional[Plan] = None,
) -> SearchReport:
    """Branch-and-bound over host/CSD assignments; never worse than greedy.

    Returns a :class:`SearchReport` whose ``plan`` carries
    ``origin="search"`` and whose ``t_host``/``t_csd`` are *measured*
    speculative makespans (all-host, and the winner) rather than the
    fitted model's projections — the search's projection is a
    measurement, which is the whole point.
    """
    opts = options if options is not None else SearchOptions()
    if opts.workers < 1:
        raise PlanningError(f"workers must be at least 1, got {opts.workers}")
    if opts.beam_width is not None and opts.beam_width < 1:
        raise PlanningError(
            f"beam_width must be at least 1, got {opts.beam_width}"
        )
    if len(estimates) != len(program):
        raise PlanningError(
            f"{len(estimates)} estimates for a {len(program)}-line program"
        )
    wall_started = time.perf_counter()
    metrics = SearchMetrics()
    greedy_plan = greedy if greedy is not None else (
        assign_csd_code(estimates, config) if estimates
        else host_only_plan(estimates)
    )
    k = len(program)
    if k == 0:
        plan = Plan(
            assignments=[], t_host=0.0, t_csd=0.0, estimates=tuple(estimates),
            origin="search",
        )
        metrics.wall_seconds = time.perf_counter() - wall_started
        return SearchReport(
            plan=plan, greedy_plan=greedy_plan,
            makespan_s=0.0, greedy_makespan_s=0.0, metrics=metrics,
        )

    locations: Tuple[str, ...] = (HOST, CSD) if config.csd_enabled else (HOST,)
    spec = _SpeculativeMachine(program, dataset, config)
    keys = _step_space(k, locations)
    steps = _measure_steps(
        spec, keys, opts.workers, program, dataset, config,
    )
    metrics.steps_simulated = len(steps)
    final_csd = steps[(_FINAL, HOST, CSD)]

    def leaf_tail(last_location: str) -> float:
        return final_csd if last_location == CSD else 0.0

    def walk(assignments: Sequence[str]) -> float:
        """Speculative makespan of a complete assignment."""
        elapsed = 0.0
        value_location = HOST
        for index, location in enumerate(assignments):
            elapsed += steps[(index, location, value_location)]
            value_location = location
        return elapsed + leaf_tail(value_location) if assignments else 0.0

    # The measured optimistic cost of each line, for the admissible
    # bound: its cheapest location, input optimistically in place.
    cheapest = [
        min(
            steps[(index, location, value_location)]
            for location in locations
            for value_location in (HOST, CSD)
        )
        for index in range(k)
    ]

    # Incumbent: greedy's leaf.  Improvements must be strict, so on a
    # workload where greedy is optimal the returned assignment is
    # greedy's, bit for bit.
    incumbent_assignments: Tuple[str, ...] = tuple(greedy_plan.assignments)
    greedy_makespan = walk(incumbent_assignments)
    incumbent_makespan = greedy_makespan
    metrics.incumbent_trajectory.append(
        (0, incumbent_makespan, incumbent_assignments)
    )

    # Priority queue of partial assignments.  The priority leads with
    # the measured admissible bound; the fitted-estimate heuristic and
    # the assignment tuple break ties deterministically.
    root = (
        _fold_bound(0.0, cheapest, 0),
        estimate_priority(estimates, 0),
        (),  # assignments so far
        0.0,  # elapsed
        HOST,  # value location
    )
    frontier: List[Tuple[float, float, Tuple[str, ...], float, str]] = [root]
    expanded_at_depth = [0] * (k + 1)
    best_at_state: Dict[Tuple[int, str], float] = {}

    while frontier and metrics.nodes_expanded < opts.max_nodes:
        bound, _, assignments, elapsed, value_location = heapq.heappop(frontier)
        depth = len(assignments)
        if bound >= incumbent_makespan:
            # The heap never shrinks its keys: every remaining node is
            # at least this bad, so the incumbent is optimal (within
            # the beam) and the search is done.
            metrics.nodes_pruned += len(frontier) + 1
            break
        state = (depth, value_location)
        seen = best_at_state.get(state)
        if seen is not None and elapsed >= seen:
            # Transposition: an interchangeable prefix already got here
            # at least as fast.
            metrics.memo_hits += 1
            continue
        best_at_state[state] = elapsed
        if opts.beam_width is not None:
            if expanded_at_depth[depth] >= opts.beam_width:
                metrics.nodes_pruned += 1
                continue
            expanded_at_depth[depth] += 1
        metrics.nodes_expanded += 1
        if depth == k:
            makespan = elapsed + leaf_tail(value_location)
            if makespan < incumbent_makespan:
                incumbent_makespan = makespan
                incumbent_assignments = assignments
                metrics.incumbent_trajectory.append(
                    (metrics.nodes_expanded, makespan, assignments)
                )
            continue
        for location in locations:
            child_elapsed = elapsed + steps[(depth, location, value_location)]
            child_bound = _fold_bound(child_elapsed, cheapest, depth + 1)
            if child_bound >= incumbent_makespan:
                metrics.nodes_pruned += 1
                continue
            heapq.heappush(frontier, (
                child_bound,
                estimate_priority(estimates, depth + 1),
                assignments + (location,),
                child_elapsed,
                location,
            ))

    t_host = walk((HOST,) * k)
    plan = Plan(
        assignments=list(incumbent_assignments),
        t_host=t_host,
        t_csd=incumbent_makespan,
        estimates=tuple(estimates),
        origin="search",
    )
    metrics.wall_seconds = time.perf_counter() - wall_started
    return SearchReport(
        plan=plan,
        greedy_plan=greedy_plan,
        makespan_s=incumbent_makespan,
        greedy_makespan_s=greedy_makespan,
        metrics=metrics,
    )
