"""The sampling phase (paper §III-A).

ActivePy heuristically selects prefixes of the raw stored input at four
exponentially growing scaling factors (tiny 2^-10, small 2^-9, medium
2^-8, large 2^-7), runs the program on each sample under the line
profiler, and aggregates per-line observation series that the curve
fitter consumes.

Sampling is not free: each sample run reads its (small) input and
executes every kernel, and the phase's simulated cost is charged to the
machine clock by the caller — this is the overhead the paper measures
at "typically 0.1 sec".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..config import SystemConfig
from ..errors import SamplingError
from ..lang.dataset import Dataset
from ..lang.program import Program
from .fitting import FittedCurve, fit_curve
from .profiler import LineProfiler, LineRecord


@dataclass
class SampleSeries:
    """Observations for one line across all sample runs."""

    index: int
    name: str
    n_values: List[int] = field(default_factory=list)
    compute_seconds: List[float] = field(default_factory=list)
    data_access_seconds: List[float] = field(default_factory=list)
    input_bytes: List[float] = field(default_factory=list)
    output_bytes: List[float] = field(default_factory=list)
    storage_bytes: List[float] = field(default_factory=list)

    def add(self, record: LineRecord) -> None:
        self.n_values.append(record.n_records)
        self.compute_seconds.append(record.compute_seconds)
        self.data_access_seconds.append(record.data_access_seconds)
        self.input_bytes.append(record.input_bytes)
        self.output_bytes.append(record.output_bytes)
        self.storage_bytes.append(record.storage_bytes)


@dataclass
class LineFits:
    """Fitted curves for every per-line metric."""

    index: int
    name: str
    compute: FittedCurve
    data_access: FittedCurve
    output_bytes: FittedCurve
    storage_bytes: FittedCurve


@dataclass
class SamplingReport:
    """Everything the sampling phase learned, plus what it cost."""

    series: List[SampleSeries]
    fits: List[LineFits]
    #: Simulated seconds the sample runs consumed.
    sampling_seconds: float
    factors: tuple

    def fit_for(self, name: str) -> LineFits:
        for fit in self.fits:
            if fit.name == name:
                return fit
        raise SamplingError(f"no fitted line named {name!r}")


class SamplingPhase:
    """Drives sample-input creation, profiling, and curve fitting."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.profiler = LineProfiler(config)

    def run(self, program: Program, dataset: Dataset) -> SamplingReport:
        """Profile the program at every scaling factor and fit curves."""
        if dataset.is_sample:
            raise SamplingError("sampling must start from the full dataset")
        sizes = {
            max(1, round(dataset.full_records * f))
            for f in self.config.sampling_factors
        }
        if len(sizes) < len(self.config.sampling_factors):
            raise SamplingError(
                f"dataset {dataset.name!r} has too few records "
                f"({dataset.full_records}) for the sampling factors to "
                f"produce distinct sample sizes"
            )
        series: Dict[int, SampleSeries] = {
            i: SampleSeries(index=i, name=s.name) for i, s in enumerate(program)
        }
        total_seconds = 0.0
        for factor in self.config.sampling_factors:
            sample = dataset.sample(factor)
            records = self.profiler.profile(program, sample)
            total_seconds += self.profiler.run_seconds(records)
            for record in records:
                series[record.index].add(record)

        fits = [self._fit_line(s) for s in series.values()]
        return SamplingReport(
            series=list(series.values()),
            fits=fits,
            sampling_seconds=total_seconds,
            factors=tuple(self.config.sampling_factors),
        )

    def _fit_line(self, s: SampleSeries) -> LineFits:
        ns = [float(n) for n in s.n_values]
        return LineFits(
            index=s.index,
            name=s.name,
            compute=fit_curve(ns, s.compute_seconds),
            data_access=fit_curve(ns, s.data_access_seconds),
            output_bytes=fit_curve(ns, s.output_bytes),
            storage_bytes=fit_curve(ns, s.storage_bytes),
        )
