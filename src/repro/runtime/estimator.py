"""Cost estimation: Equation 1 and per-line host/device estimates.

The paper's Equation 1 quantifies the net profit of performing a code
region on the CSD instead of the host:

    S = (DS_raw / BW_D2H + CT_host) - (CT_device + DS_processed / BW_D2H)

A region is worth offloading when S > 0.  :func:`net_profit` exposes
the equation directly; :func:`build_estimates` turns a sampling report
into the per-line numbers Algorithm 1 consumes, extrapolating fitted
curves to the raw input size and scaling host compute time to device
compute time by the calibration constant C (queried from the device's
performance counters, §III-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..config import SystemConfig
from ..errors import PlanningError
from .sampling import SamplingReport


def net_profit(
    raw_bytes: float,
    processed_bytes: float,
    ct_host: float,
    ct_device: float,
    bw_d2h: float,
) -> float:
    """Equation 1: seconds saved by running a region on the CSD.

    Positive means the CSD wins.  ``raw_bytes`` is the input the host
    would otherwise pull across the interconnect; ``processed_bytes``
    is what the device ships back instead.
    """
    if bw_d2h <= 0:
        raise PlanningError(f"bw_d2h must be positive, got {bw_d2h}")
    host_side = raw_bytes / bw_d2h + ct_host
    device_side = ct_device + processed_bytes / bw_d2h
    return host_side - device_side


@dataclass(frozen=True)
class LineEstimate:
    """Predicted full-scale behaviour of one line.

    All values are extrapolations from sampled observations — they can
    be wrong, and the planner's decisions inherit that error (which is
    the point of the paper's §V accuracy discussion).
    """

    index: int
    name: str
    #: Predicted execution time on the host, storage access included.
    ct_host: float
    #: Predicted execution time on the CSD, internal reads included.
    ct_device: float
    #: Predicted bytes arriving from the previous line (memory input).
    d_in: float
    #: Predicted bytes passed to the next line.
    d_out: float
    #: Predicted bytes streamed from storage.
    d_storage: float
    #: Predicted host compute seconds, storage access excluded.
    compute_host: float


@dataclass(frozen=True)
class RegionProfit:
    """Equation 1 evaluated for one contiguous candidate region."""

    first_line: int
    last_line: int
    names: tuple
    raw_bytes: float
    processed_bytes: float
    ct_host: float
    ct_device: float
    profit_seconds: float

    @property
    def worthwhile(self) -> bool:
        return self.profit_seconds > 0


def region_profits(
    estimates: List["LineEstimate"],
    config: SystemConfig,
) -> List[RegionProfit]:
    """Equation 1 over every contiguous line region.

    The paper's offload criterion made explicit: for each candidate
    single-entry-single-exit region [i..j], the region's raw input is
    what the host would otherwise pull (its memory input plus its
    storage streams) and its processed output is the last line's value.
    Diagnostic/teaching API — the planner itself uses Algorithm 1's
    incremental form.
    """
    profits: List[RegionProfit] = []
    for i in range(len(estimates)):
        ct_host = 0.0
        ct_device = 0.0
        storage = 0.0
        for j in range(i, len(estimates)):
            line = estimates[j]
            # Compute-only host time: the raw input transfer is the
            # equation's DS_raw term, not part of CT_host.
            ct_host += line.compute_host
            ct_device += line.ct_device
            storage += line.d_storage
            profits.append(RegionProfit(
                first_line=i,
                last_line=j,
                names=tuple(e.name for e in estimates[i:j + 1]),
                raw_bytes=estimates[i].d_in + storage,
                processed_bytes=line.d_out,
                ct_host=ct_host,
                ct_device=ct_device,
                profit_seconds=net_profit(
                    raw_bytes=estimates[i].d_in + storage,
                    processed_bytes=line.d_out,
                    ct_host=ct_host,
                    ct_device=ct_device,
                    bw_d2h=config.bw_d2h,
                ),
            ))
    return profits


def calibration_constant(config: SystemConfig, counters: Optional[dict] = None) -> float:
    """The constant C that scales host compute time to CSD compute time.

    When the device exposes performance counters (our CSE does), C is
    derived from its nominal per-cycle throughput; otherwise the caller
    falls back to probing both units with a small program
    (:func:`calibrate_by_probe`).
    """
    if counters is not None:
        device_ips = counters["ipc_nominal"] * counters["clock_hz"]
        if device_ips <= 0:
            raise PlanningError("device counters report non-positive throughput")
        return config.host_ips / device_ips
    return config.host_ips / config.cse_ips


def calibrate_by_probe(host_unit, device_unit, probe_instructions: float = 1e6) -> float:
    """Measure C by running a small sample program on both units.

    The fallback path of §III-A for devices without readable counters.
    Advances the simulated clock by the (tiny) probe cost.
    """
    host_time = host_unit.execute(probe_instructions)
    device_time = device_unit.execute(probe_instructions)
    if host_time <= 0:
        raise PlanningError("host probe took no measurable time")
    return device_time / host_time


def build_estimates(
    report: SamplingReport,
    full_records: int,
    config: SystemConfig,
    device_counters: Optional[dict] = None,
) -> List[LineEstimate]:
    """Extrapolate a sampling report to full scale, line by line."""
    if full_records <= 0:
        raise PlanningError(f"full_records must be positive, got {full_records}")
    c_factor = calibration_constant(config, device_counters)
    estimates: List[LineEstimate] = []
    previous_out = 0.0
    n = float(full_records)
    for fit in report.fits:
        compute = fit.compute.predict(n)
        storage_bytes = fit.storage_bytes.predict(n)
        d_out = fit.output_bytes.predict(n)
        # The profiler observed data-access time at host bandwidth; on
        # the device the same bytes stream over the internal bus.
        host_access = storage_bytes / config.bw_host_storage
        device_access = storage_bytes / config.bw_internal
        estimates.append(
            LineEstimate(
                index=fit.index,
                name=fit.name,
                ct_host=compute + host_access,
                ct_device=compute * c_factor + device_access,
                d_in=previous_out,
                d_out=d_out,
                d_storage=storage_bytes,
                compute_host=compute,
            )
        )
        previous_out = d_out
    return estimates
