"""Plan execution on the simulated machine.

The executor is the simulator-side counterpart of the ActivePy runtime:
it charges *ground-truth* costs (instruction counts, byte volumes) to
the machine — compute on the assigned unit, stored-data streaming over
the appropriate path, inter-unit value transfers over the NVMe link —
while the runtime's decisions (monitoring, re-estimation, migration)
consume only what a real host could observe: status updates carrying
IPC, and the plan's own fitted estimates.

Each line executes in ``chunks`` pieces (its dynamic instances).  After
every CSD chunk the device posts a status update, the simulator fires
any due background events (availability changes, GC), and the monitor
gets a chance to trigger re-estimation and migration.  Migration breaks
at a chunk boundary — "the end of the currently executing line" in the
paper's terms — saves locals, regenerates host code, and finishes the
remaining work on the host with live device-resident data accessed over
the remote BAR path.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..analysis.timeline import ExecutionTimeline
from ..errors import CseCrashError, FaultError, MigrationError, ProgramError
from ..faults import FaultEvent, FaultLog
from ..hw.topology import Machine
from ..integrity import CLEAN_DIGEST, IntegrityChecker
from ..lang.program import Program, Statement
from .checkpoint import CheckpointManager
from .codegen import CompiledProgram
from .dispatch import CallQueueDispatcher, StatusUpdate
from .estimator import LineEstimate
from .migration import MigrationEvent, migration_cost_estimate, perform_migration
from .monitor import RuntimeMonitor
from .planner import CSD, HOST

#: IPC drift lives in [0, 1]; the time-decade default buckets would
#: collapse it into two bins.
_DRIFT_BUCKETS = (0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0)


@dataclass
class LineTiming:
    """Where one line actually ran and how long it took."""

    index: int
    name: str
    planned_location: str
    actual_location: str
    seconds: float
    migrated_mid_line: bool = False


@dataclass
class ExecutionResult:
    """Outcome of one end-to-end plan execution."""

    program_name: str
    total_seconds: float
    line_timings: List[LineTiming]
    migrations: List[MigrationEvent] = field(default_factory=list)
    started_at: float = 0.0
    finished_at: float = 0.0
    d2h_bytes: float = 0.0
    remote_access_bytes: float = 0.0
    status_updates: int = 0
    #: Every injected fault and recovery action, in sim-time order.
    fault_events: List[FaultEvent] = field(default_factory=list)
    #: True when a fault forced work off its planned unit (the run
    #: still completed, host-side, instead of raising).
    degraded: bool = False
    #: Device chunks replayed after a transient fault.
    chunk_replays: int = 0
    #: Chunks actually executed per line index (device + host, replays
    #: included).  A correct run never executes fewer chunks than a
    #: line has — the chaos harness's work-conservation invariant.
    chunks_executed: Dict[int, int] = field(default_factory=dict)
    #: Line-boundary checkpoint counters (saves/restores/fallbacks/
    #: restarts/torn_writes) from the :class:`CheckpointManager`.
    checkpoint_stats: Dict[str, int] = field(default_factory=dict)
    #: Content signature of the reported output: :data:`CLEAN_DIGEST`
    #: unless silently corrupted bytes survived into the result (the
    #: chaos harness compares this against the fault-free baseline).
    output_digest: str = CLEAN_DIGEST
    #: Integrity-layer counters (detected/missed/verified_bytes/...)
    #: from the :class:`~repro.integrity.IntegrityChecker`.
    integrity_stats: Dict[str, Any] = field(default_factory=dict)

    @property
    def migrated(self) -> bool:
        return bool(self.migrations)

    def seconds_for(self, name: str) -> float:
        for timing in self.line_timings:
            if timing.name == name:
                return timing.seconds
        raise KeyError(f"no line named {name!r}")

    # --- the common report protocol (see analysis/export.py) ---------------

    def summary(self) -> Dict[str, Any]:
        """The headline numbers of the execution, JSON-ready."""
        return {
            "program": self.program_name,
            "total_seconds": self.total_seconds,
            "migrations": len(self.migrations),
            "degraded": self.degraded,
            "chunk_replays": self.chunk_replays,
            "status_updates": self.status_updates,
            "d2h_bytes": self.d2h_bytes,
            "remote_access_bytes": self.remote_access_bytes,
            "output_digest": self.output_digest,
        }

    def to_jsonable(self) -> Dict[str, Any]:
        """Full JSON-ready view of the execution."""
        payload: Dict[str, Any] = {"experiment": "execution-result"}
        payload.update(self.summary())
        payload["line_timings"] = [asdict(t) for t in self.line_timings]
        payload["migration_events"] = [asdict(m) for m in self.migrations]
        payload["fault_events"] = [asdict(e) for e in self.fault_events]
        payload["chunks_executed"] = {
            str(index): count for index, count in sorted(self.chunks_executed.items())
        }
        payload["checkpoint_stats"] = dict(self.checkpoint_stats)
        payload["integrity_stats"] = dict(self.integrity_stats)
        return payload


#: Experiment hook: throttle the CSE when offloaded work crosses a
#: progress fraction — the paper stresses the device "right after each
#: application's ISP tasks make 50% of their progress".
ProgressTrigger = Tuple[float, float]  # (csd-progress fraction, new availability)


class PlanExecutor:
    """Runs a compiled program under a plan, with optional migration."""

    def __init__(
        self,
        machine: Machine,
        migration_enabled: bool = True,
        timeline: Optional[ExecutionTimeline] = None,
        device=None,
        fault_log: Optional[FaultLog] = None,
    ) -> None:
        self.machine = machine
        self.migration_enabled = migration_enabled
        self.device = device if device is not None else machine.csd
        self.fault_log = fault_log if fault_log is not None else FaultLog()
        self.dispatcher = CallQueueDispatcher(
            machine, device=self.device, fault_log=self.fault_log
        )
        self.checkpoints = CheckpointManager(
            device=self.device, config=machine.config, fault_log=self.fault_log
        )
        self.timeline = timeline
        self.obs = machine.obs
        self.integrity = IntegrityChecker(
            config=machine.config,
            clock=machine.simulator.clock,
            fault_log=self.fault_log,
            obs=self.obs,
        )
        self.chunk_replays = 0
        self._chunk_ledger: Dict[int, int] = {}

    def _trace(self, start: float, resource: str, kind: str, label: str) -> None:
        if self.timeline is not None:
            self.timeline.record(start, self.machine.now, resource, kind, label)
        self.obs.record_span(label, kind, resource, start, self.machine.now)

    # --- public entry ----------------------------------------------------

    def execute(
        self,
        compiled: CompiledProgram,
        n_records: int,
        progress_triggers: Sequence[ProgressTrigger] = (),
    ) -> ExecutionResult:
        if n_records <= 0:
            raise ProgramError(f"n_records must be positive, got {n_records}")
        machine = self.machine
        program = compiled.program
        plan = compiled.plan
        estimates = self._estimates_by_index(plan.estimates)
        if self.migration_enabled and not estimates:
            raise MigrationError(
                "migration needs the plan's line estimates for re-estimation"
            )

        n = float(n_records)
        multiplier = compiled.multiplier
        self._chunk_ledger = {index: 0 for index in range(len(program))}
        started = machine.now
        d2h_before = machine.d2h_link.bytes_transferred
        remote_before = machine.remote_access_link.bytes_transferred

        total_csd_instr = self._total_csd_instructions(program, plan, n)
        triggers = sorted(progress_triggers)
        trigger_cursor = 0
        csd_instr_done = 0.0

        timings: List[LineTiming] = []
        migrations: List[MigrationEvent] = []
        value_location = HOST
        migrated = False  # once true, every remaining line runs on the host
        degraded = False  # a fault forced work off its planned unit
        last_migration_at = -float("inf")

        for index, statement in enumerate(program):
            planned = plan.assignments[index]
            location = HOST if migrated else planned
            cooled_down = (
                machine.now - last_migration_at
                >= machine.config.readmission_cooldown_s
            )
            if (
                migrated and planned == CSD
                and cooled_down
                and self._device_recovered()
                and self._readmission_profitable(estimates.get(index))
            ):
                # Re-admission (extension beyond the paper): the
                # device's status page reports a healthy rate again and
                # the line's Equation-1 economics still favour it, so
                # it returns to its planned home.
                location = CSD
                migrated = False
            line_start = machine.now
            d_in = program.input_bytes(index, n)
            storage_total = statement.storage_bytes(n)
            instr_total = statement.instructions(n) * multiplier
            chunks = statement.chunks

            # Ship the input value if it lives on the other unit.  A
            # post-migration host line whose input was produced on the
            # CSD reads it remotely instead (live data stays put).
            input_remote = False
            if location != value_location and d_in > 0:
                if migrated and value_location == CSD:
                    input_remote = True
                else:
                    transfer_start = machine.now
                    self._verified_move(
                        machine.d2h_link, d_in, multiplier,
                        key=f"input.line{index}",
                    )
                    self._trace(transfer_start, "d2h", "transfer",
                                f"{statement.name}.input")

            if location == CSD:
                try:
                    command_id = self.dispatcher.invoke(
                        statement.name,
                        compiled.device_binaries.get(statement.name),
                    )
                except FaultError as exc:
                    # The device would not even accept the call (stalled
                    # queue pair beyond the deadline): run the whole
                    # line on the host instead of raising.
                    self.fault_log.record(
                        machine.now, "recovery", self.device.name,
                        "host-fallback",
                        f"{statement.name} could not be dispatched: {exc}",
                    )
                    self._run_line_on_host(
                        index, statement, instr_total, storage_total, d_in,
                        input_remote=value_location == CSD, multiplier=multiplier,
                    )
                    migrated = True
                    degraded = True
                    self.obs.count("executor.host_fallbacks")
                    value_location = HOST
                    self._trace(line_start, HOST, "compute", statement.name)
                    timings.append(
                        LineTiming(
                            index=index,
                            name=statement.name,
                            planned_location=planned,
                            actual_location=HOST,
                            seconds=machine.now - line_start,
                        )
                    )
                    continue
                monitor = RuntimeMonitor(
                    config=machine.config,
                    expected_ipc=self.device.cse.expected_ipc(),
                )
                line_migrated = False
                line_faulted = False
                replays_left = machine.config.chunk_replay_limit
                chunk = 0
                # Commit the line's entry checkpoint so a crash during
                # the very first chunk still restores to *this* line.
                self.checkpoints.save(index, 0, statement.live_vars, machine.now)
                while chunk < chunks:
                    fault: Optional[FaultError] = None
                    try:
                        self._run_chunk_on_csd(
                            index, statement, chunk,
                            instr_total, storage_total, chunks, multiplier,
                        )
                    except FaultError as exc:
                        fault = exc
                    machine.simulator.fire_due_events()
                    if fault is None and self.device.cse.crashed:
                        # The crash event fired inside this chunk's time
                        # span: its partial work is lost.
                        fault = CseCrashError(
                            f"CSE {self.device.name!r} crashed mid-chunk"
                        )
                    if fault is not None:
                        if self._try_chunk_replay(statement, chunk, fault, replays_left):
                            replays_left -= 1
                            self.chunk_replays += 1
                            self.obs.count("executor.chunk_replays")
                            # The IPC trend across the fault is noise,
                            # not congestion; start the monitor fresh.
                            monitor.reset()
                            continue
                        # Retries exhausted (or the device is beyond
                        # saving): resume host-side at a Python-line
                        # boundary.  The resume point comes from the
                        # BAR checkpoint record, not from host-side
                        # bookkeeping — the record survives the crash
                        # (and, double-buffered, a torn write).
                        resume = self.checkpoints.resume_chunk(
                            index, chunks, fallback=chunk
                        )
                        self.fault_log.record(
                            machine.now, "recovery", self.device.name,
                            "host-fallback",
                            f"{statement.name} resumes on the host at chunk {resume}",
                        )
                        self.dispatcher.abandon(command_id)
                        self._finish_line_on_host(
                            index,
                            statement,
                            instr_total,
                            storage_total,
                            d_in,
                            chunks,
                            first_chunk=resume,
                            input_on_device=d_in > 0,
                            multiplier=multiplier,
                        )
                        migrated = True
                        line_migrated = True
                        line_faulted = True
                        degraded = True
                        self.obs.count("executor.host_fallbacks")
                        location = HOST
                        break
                    csd_instr_done += instr_total / chunks
                    self._chunk_ledger[index] += 1
                    chunk += 1
                    self.checkpoints.save(
                        index, chunk, statement.live_vars, machine.now
                    )
                    trigger_cursor = self._apply_progress_triggers(
                        triggers, trigger_cursor, csd_instr_done, total_csd_instr
                    )
                    update = self._post_status(statement, chunk, chunks)
                    decision = monitor.observe(update)
                    if self.obs.enabled:
                        # Drift of observed vs planner-predicted IPC per
                        # status update, so migration triggers can be
                        # audited against the estimate after the fact.
                        self.obs.metrics.histogram(
                            "monitor.ipc_drift", buckets=_DRIFT_BUCKETS
                        ).observe(decision.ipc_drift)
                    if not (self.migration_enabled and decision.reestimate):
                        continue
                    event = self._consider_migration(
                        estimates=estimates,
                        plan=plan,
                        index=index,
                        statement=statement,
                        chunk=chunk,
                        chunks=chunks,
                        inferred_availability=decision.inferred_availability,
                        reason=decision.reason,
                        forced=update.high_priority_pending,
                    )
                    if event is None:
                        continue
                    migrations.append(event)
                    self.obs.count("executor.migrations")
                    # The drift that tipped this migration, for audits.
                    self.obs.gauge("monitor.migration_trigger_drift",
                                   decision.ipc_drift)
                    last_migration_at = machine.now
                    if update.high_priority_pending:
                        self.device.cse.acknowledge_high_priority()
                    # Finish this line's remaining chunks on the host,
                    # reading the unconsumed input remotely.  The break
                    # chunk is re-read from the checkpoint record the
                    # device left in shared memory (paper §III-D).
                    self._finish_line_on_host(
                        index,
                        statement,
                        instr_total,
                        storage_total,
                        d_in,
                        chunks,
                        first_chunk=(
                            event.resume_chunk if event.resume_chunk >= 0 else chunk
                        ),
                        input_on_device=d_in > 0,
                        multiplier=multiplier,
                    )
                    migrated = True
                    line_migrated = True
                    location = HOST
                    break
                if not line_faulted:
                    self.dispatcher.complete(command_id)
                    try:
                        self.dispatcher.reap_completion(command_id)
                    except FaultError as exc:
                        # The work ran but its final acknowledgement
                        # never arrived and retries exhausted: the host
                        # cannot trust it, so it replays the whole line
                        # itself (lines are idempotent).
                        self.fault_log.record(
                            machine.now, "recovery", self.device.name,
                            "line-replay-host",
                            f"{statement.name} unacknowledged ({exc}); "
                            "replayed on the host",
                        )
                        self.dispatcher.abandon(command_id)
                        self._finish_line_on_host(
                            index,
                            statement,
                            instr_total,
                            storage_total,
                            d_in,
                            chunks,
                            first_chunk=0,
                            input_on_device=d_in > 0,
                            multiplier=multiplier,
                        )
                        migrated = True
                        line_migrated = True
                        degraded = True
                        self.obs.count("executor.host_fallbacks")
                        location = HOST
                value_location = HOST if line_migrated else CSD
                self._trace(
                    line_start, CSD if not line_migrated else f"{CSD}+host",
                    "compute", statement.name,
                )
                timings.append(
                    LineTiming(
                        index=index,
                        name=statement.name,
                        planned_location=planned,
                        actual_location=location,
                        seconds=machine.now - line_start,
                        migrated_mid_line=line_migrated,
                    )
                )
            else:
                self._run_line_on_host(
                    index, statement, instr_total, storage_total, d_in,
                    input_remote=input_remote, multiplier=multiplier,
                )
                value_location = HOST
                self._trace(line_start, HOST, "compute", statement.name)
                timings.append(
                    LineTiming(
                        index=index,
                        name=statement.name,
                        planned_location=planned,
                        actual_location=HOST,
                        seconds=machine.now - line_start,
                    )
                )

        # The program's final value must reach the host.
        last = program[len(program) - 1]
        if value_location == CSD:
            # BAR readback of the result: the last place a garbled
            # transfer could still slip into the report.
            transfer_start = machine.now
            self._verified_move(
                machine.d2h_link, last.output_bytes(n), multiplier,
                key="final.output",
            )
            self._trace(transfer_start, "d2h", "transfer", "final.output")

        finished = machine.now
        if self.obs.enabled:
            self.obs.metrics.counter("executor.lines").inc(len(timings))
        return ExecutionResult(
            program_name=program.name,
            total_seconds=finished - started,
            line_timings=timings,
            migrations=migrations,
            started_at=started,
            finished_at=finished,
            d2h_bytes=machine.d2h_link.bytes_transferred - d2h_before,
            remote_access_bytes=(
                machine.remote_access_link.bytes_transferred - remote_before
            ),
            status_updates=self.dispatcher.status_updates,
            fault_events=list(self.fault_log.events),
            degraded=degraded,
            chunk_replays=self.chunk_replays,
            chunks_executed=dict(self._chunk_ledger),
            checkpoint_stats=self.checkpoints.stats(),
            output_digest=self.integrity.digest(),
            integrity_stats=self.integrity.stats(),
        )

    # --- speculative stepping (plan search) ----------------------------------

    def run_line_clean(
        self,
        compiled: CompiledProgram,
        n_records: int,
        index: int,
        location: str,
        value_location: str,
    ) -> str:
        """Execute one line of the *fault-free* path; return the new
        location of the program's live value.

        This is the stepper :mod:`repro.runtime.plansearch` drives
        against a forked simulator state: the same charging primitives
        as :meth:`execute` (input shipping over the D2H link, dispatch
        doorbells, per-chunk streaming + compute, checkpoint saves,
        status messages), minus the fault/migration machinery that a
        speculative dry-run has no business exercising.  Fidelity to
        the real fault-free run is pinned by
        ``tests/test_plansearch.py``: summing these steps over a full
        assignment reproduces :meth:`execute`'s makespan.
        """
        machine = self.machine
        program = compiled.program
        statement = program[index]
        n = float(n_records)
        multiplier = compiled.multiplier
        self._chunk_ledger.setdefault(index, 0)

        d_in = program.input_bytes(index, n)
        storage_total = statement.storage_bytes(n)
        instr_total = statement.instructions(n) * multiplier
        chunks = statement.chunks

        if location != value_location and d_in > 0:
            self._verified_move(
                machine.d2h_link, d_in, multiplier, key=f"input.line{index}",
            )
        if location != CSD:
            self._run_line_on_host(
                index, statement, instr_total, storage_total, d_in,
                input_remote=False, multiplier=multiplier,
            )
            return HOST

        command_id = self.dispatcher.invoke(
            statement.name, compiled.device_binaries.get(statement.name),
        )
        self.checkpoints.save(index, 0, statement.live_vars, machine.now)
        for chunk in range(chunks):
            self._run_chunk_on_csd(
                index, statement, chunk,
                instr_total, storage_total, chunks, multiplier,
            )
            machine.simulator.fire_due_events()
            self._chunk_ledger[index] += 1
            self.checkpoints.save(
                index, chunk + 1, statement.live_vars, machine.now
            )
            self._post_status(statement, chunk + 1, chunks)
        self.dispatcher.complete(command_id)
        self.dispatcher.reap_completion(command_id)
        return CSD

    def finish_clean(
        self, compiled: CompiledProgram, n_records: int, value_location: str
    ) -> None:
        """The fault-free epilogue: read the final value back if needed."""
        program = compiled.program
        if value_location == CSD and len(program) > 0:
            last = program[len(program) - 1]
            self._verified_move(
                self.machine.d2h_link,
                last.output_bytes(float(n_records)),
                compiled.multiplier,
                key="final.output",
            )

    # --- chunk mechanics ----------------------------------------------------

    def _move(self, link, nbytes: float, multiplier: float) -> None:
        """Transfer data, with the runtime mode's data-path overhead.

        Interpreted and Cython runtimes move data through boxed
        buffers, so their I/O path stretches by the same factor as
        their compute; ActivePy's copy elimination is what removes it.
        """
        elapsed = link.transfer(nbytes)
        if multiplier > 1.0 and elapsed > 0:
            # The boxed-buffer stretch is still time on the same wire.
            self.machine.simulator.clock.advance(
                elapsed * (multiplier - 1.0), component=link.component
            )

    def _verified_move(self, link, nbytes: float, multiplier: float, key: str) -> None:
        """A value transfer followed by the consumer-side digest check.

        Used for the standalone payload moves (shipping a line's input,
        the final BAR readback of the result) where recovery is an
        inline retransmit rather than a chunk replay.
        """
        self._move(link, nbytes, multiplier)
        self._ingest(
            [(link, nbytes)], multiplier,
            tainted=False, key=key, target=link.name, raise_on_detect=False,
        )

    def _ingest(
        self,
        moves,
        multiplier: float,
        tainted: bool,
        key: Optional[str],
        target: str,
        raise_on_detect: bool,
    ) -> None:
        """Consumer-side integrity handling for freshly ingested bytes.

        Consumes any armed in-flight corruption on the traversed links
        (the bits flip whether or not anyone checks), charges the
        simulated verify cost when the layer is enabled, and on a
        detected mismatch either raises :class:`IntegrityError` (device
        chunks — the caller's replay machinery recovers) or re-reads
        the garbled payloads inline (host-side transfers).  With the
        layer disabled this touches neither the clock nor any metric.
        """
        integ = self.integrity
        dirty = [
            (link, nbytes)
            for link, nbytes in moves
            if nbytes > 0 and link.consume_transfer_corruption()
        ]
        tainted = tainted or bool(dirty)
        if integ.enabled:
            integ.charge_verify(
                sum(nbytes for _, nbytes in moves if nbytes > 0)
            )
            if tainted and integ.verify:
                if raise_on_detect:
                    integ.raise_mismatch(target, f"{key}: content digest mismatch")
                while dirty:
                    integ.record_detected(
                        target, f"{key}: payload digest mismatch; re-reading"
                    )
                    redo, dirty = dirty, []
                    for link, nbytes in redo:
                        self._move(link, nbytes, multiplier)
                        integ.charge_verify(nbytes)
                        if link.consume_transfer_corruption():
                            dirty.append((link, nbytes))
                tainted = False
        if key is not None:
            integ.record_unit(key, tainted)

    def _chunk(
        self,
        unit,
        moves,
        instructions: float,
        multiplier: float,
        key: Optional[str] = None,
        tainted: bool = False,
        raise_on_detect: bool = False,
    ) -> None:
        """One chunk of data movement + compute on ``unit``.

        ``moves`` is a list of (link, nbytes) pairs.  Sequential by
        default; with ``config.overlap_io_compute`` the chunk costs
        max(io, compute), modelling a double-buffered engine.  ``key``
        names the logical unit in the integrity taint ledger;
        ``tainted`` carries producer-side corruption already consumed
        by the caller (a silently corrupted NAND stream).
        """
        machine = self.machine
        chunk_started = machine.now
        if not machine.config.overlap_io_compute:
            for link, nbytes in moves:
                if nbytes > 0:
                    self._move(link, nbytes, multiplier)
            unit.execute(instructions)
            self._record_chunk(unit, chunk_started)
            self._ingest(
                moves, multiplier,
                tainted=tainted, key=key, target=unit.name,
                raise_on_detect=raise_on_detect,
            )
            return
        io_seconds = sum(
            link.transfer_time(nbytes) * multiplier
            for link, nbytes in moves if nbytes > 0
        )
        compute_seconds = unit.execution_time(instructions)
        elapsed = max(io_seconds, compute_seconds)
        # Overlapped chunks advance once by the binding side; attributing
        # the whole advance to that side is critical-path accounting —
        # the hidden, shorter resource contributes zero path time.
        if io_seconds >= compute_seconds and moves:
            binding = moves[0][0].component
        else:
            binding = unit.component
        machine.simulator.clock.advance(elapsed, component=binding)
        for link, nbytes in moves:
            if nbytes > 0:
                link.account(nbytes)
        unit.charge(instructions, elapsed)
        self._record_chunk(unit, chunk_started)
        self._ingest(
            moves, multiplier,
            tainted=tainted, key=key, target=unit.name,
            raise_on_detect=raise_on_detect,
        )

    def _record_chunk(self, unit, chunk_started: float) -> None:
        if self.obs.enabled:
            metrics = self.obs.metrics
            metrics.counter(f"executor.chunks.{unit.name}").inc()
            metrics.histogram("executor.chunk_seconds").observe(
                self.machine.now - chunk_started
            )

    def _run_chunk_on_csd(
        self,
        line_index: int,
        statement: Statement,
        chunk: int,
        instr_total: float,
        storage_total: float,
        chunks: int,
        multiplier: float,
    ) -> None:
        tainted = False
        if storage_total > 0:
            # The chunk's streamed NAND access may hit an armed media
            # fault: ECC re-reads cost time here, an uncorrectable
            # error aborts the chunk before any work is charged.
            extra = self.device.consume_media_fault()
            if extra > 0:
                self.fault_log.record(
                    self.machine.now, "nand-read-correctable", self.device.name,
                    "ecc-corrected",
                    f"{statement.name}: {extra:.6f}s of ECC re-reads",
                )
            # A silently corrupted stream costs nothing and raises
            # nothing here: the flipped bits ride into the chunk and
            # only the end-of-chunk digest check can notice.
            tainted = self.device.flash.consume_silent_corruption()
        self._chunk(
            self.device.cse,
            [(self.device.internal_link, storage_total / chunks)],
            instr_total / chunks,
            multiplier,
            key=f"line{line_index}.chunk{chunk}",
            tainted=tainted,
            raise_on_detect=True,
        )

    def _run_line_on_host(
        self,
        line_index: int,
        statement: Statement,
        instr_total: float,
        storage_total: float,
        d_in: float,
        input_remote: bool,
        multiplier: float,
    ) -> None:
        machine = self.machine
        chunks = statement.chunks
        for chunk in range(chunks):
            moves = [(machine.host_storage_link, storage_total / chunks)]
            if input_remote:
                moves.append((machine.remote_access_link, d_in / chunks))
            self._chunk(
                machine.host, moves, instr_total / chunks, multiplier,
                key=f"line{line_index}.chunk{chunk}",
            )
            self._chunk_ledger[line_index] += 1
            machine.simulator.fire_due_events()

    def _finish_line_on_host(
        self,
        line_index: int,
        statement: Statement,
        instr_total: float,
        storage_total: float,
        d_in: float,
        chunks: int,
        first_chunk: int,
        input_on_device: bool,
        multiplier: float,
    ) -> None:
        """Run chunks ``first_chunk..chunks`` on the host post-migration."""
        machine = self.machine
        for chunk in range(first_chunk, chunks):
            moves = [(machine.host_storage_link, storage_total / chunks)]
            if input_on_device:
                moves.append((machine.remote_access_link, d_in / chunks))
            self._chunk(
                machine.host, moves, instr_total / chunks, multiplier,
                key=f"line{line_index}.chunk{chunk}",
            )
            self._chunk_ledger[line_index] += 1
            machine.simulator.fire_due_events()

    def _try_chunk_replay(
        self,
        statement: Statement,
        chunk: int,
        fault: FaultError,
        replays_left: int,
    ) -> bool:
        """Decide whether a failed device chunk is worth replaying.

        Transient faults (a consumed NAND read error, a crash the
        firmware resets within the deadline budget) are replayed on the
        device; persistent media faults and crashes that outlast the
        deadline are not — the caller then falls back to the host.
        All waiting happens in sim time so scheduled recovery events
        (the CSE reset) can fire while the host backs off.
        """
        machine = self.machine
        config = machine.config
        self.fault_log.record(
            machine.now, "recovery", self.device.name, "chunk-failed",
            f"{statement.name} chunk {chunk}: {fault}",
        )
        if replays_left <= 0:
            return False
        if self.device.flash.has_persistent_fault:
            # The page is unreadable on-device no matter how often we
            # retry; only the host path (replicated data) can finish.
            return False
        if self.device.cse.crashed:
            waited = 0.0
            delay = config.retry_backoff_base_s
            while waited < config.command_deadline_s and self.device.cse.crashed:
                step = min(delay, config.command_deadline_s - waited)
                # Backoff time is spent waiting on the engine's firmware
                # reset, so it belongs to the CSE, not the host.
                with self.obs.attr_scope("cse"):
                    machine.simulator.run_until(machine.now + step)
                waited += step
                delay *= config.retry_backoff_factor
            if self.device.cse.crashed:
                self.fault_log.record(
                    machine.now, "recovery", self.device.name, "device-dead",
                    f"CSE still down after backing off {waited:.6f}s",
                )
                return False
        self.fault_log.record(
            machine.now, "recovery", self.device.name, "chunk-replay",
            f"{statement.name} chunk {chunk} replayed on the device",
        )
        return True

    def _device_recovered(self) -> bool:
        """Poll the device's self-reported rate for re-admission.

        Same observability channel as the status updates: the host
        reads the execution rate the device publishes, never the
        simulator's availability knob directly.
        """
        config = self.machine.config
        if not config.readmission_enabled:
            return False
        if not self.device.healthy:
            return False
        cse = self.device.cse
        reported_rate = cse.expected_ipc() * cse.availability
        return reported_rate >= config.readmission_threshold * cse.expected_ipc()

    def _readmission_profitable(self, estimate: Optional[LineEstimate]) -> bool:
        """Equation-1 check for returning one line to the device.

        The line's input now lives on the host (the previous line ran
        there post-migration), so the move pays both transfers.
        """
        if estimate is None:
            return False
        bw = self.machine.config.bw_d2h
        delta = (
            -estimate.ct_host + estimate.ct_device
            + estimate.d_in / bw + estimate.d_out / bw
        )
        return delta < 0

    def _post_status(self, statement: Statement, chunk: int, chunks: int) -> StatusUpdate:
        """Device side: report this line's execution rate (paper §III-C0b).

        The status-update code patched into the CSD binary measures its
        own recent rate; under contention the foreground task retires
        fewer instructions per wall cycle, so the reported IPC is the
        expected IPC scaled by the cycles the engine actually got.
        """
        cse = self.device.cse
        observed_ipc = cse.expected_ipc() * cse.availability
        update = StatusUpdate(
            line_name=statement.name,
            chunk=chunk,
            ipc=observed_ipc,
            progress=chunk / chunks,
            high_priority_pending=cse.high_priority_pending,
        )
        self.dispatcher.post_status(update)
        self.dispatcher.drain_status()
        return update

    # --- migration decision ----------------------------------------------------

    def _consider_migration(
        self,
        estimates: Dict[int, LineEstimate],
        plan,
        index: int,
        statement: Statement,
        chunk: int,
        chunks: int,
        inferred_availability: float,
        reason: str,
        forced: bool,
    ) -> Optional[MigrationEvent]:
        """Re-estimate and migrate if the host now wins (paper §III-D)."""
        machine = self.machine
        config = machine.config
        est = estimates.get(index)
        if est is None:
            return None
        remaining_frac = (chunks - chunk) / chunks
        later_csd = [
            estimates[i]
            for i in range(index + 1, len(plan.assignments))
            if plan.assignments[i] == CSD and i in estimates
        ]
        c_factor = config.device_speed_ratio

        device_compute = est.compute_host * c_factor * remaining_frac
        device_access = est.d_storage * remaining_frac / config.bw_internal
        for later in later_csd:
            device_compute += later.compute_host * c_factor
            device_access += later.d_storage / config.bw_internal
        availability = max(1e-3, min(1.0, inferred_availability))
        device_projection = device_compute / availability + device_access
        # The region's final output still crosses back to the host.
        tail = later_csd[-1] if later_csd else est
        device_projection += tail.d_out / config.bw_d2h

        host_compute = est.compute_host * remaining_frac + sum(
            later.compute_host for later in later_csd
        )
        storage_bytes = est.d_storage * remaining_frac + sum(
            later.d_storage for later in later_csd
        )
        live_input = est.d_in * remaining_frac
        host_projection = migration_cost_estimate(
            config,
            remaining_host_compute_s=host_compute,
            remaining_storage_bytes=storage_bytes,
            live_input_bytes=live_input,
        )

        if not forced and host_projection >= device_projection:
            return None
        # The break chunk the host resumes at is read back from the
        # checkpoint record in BAR memory — with checkpointing off the
        # event carries -1 and the caller trusts its own counter.
        resume = (
            self.checkpoints.resume_chunk(index, chunks, fallback=chunk)
            if self.checkpoints.enabled else -1
        )
        event = perform_migration(
            machine=machine,
            line_index=index,
            line_name=statement.name,
            chunk=chunk,
            reason=reason if not forced else f"high-priority request; {reason}",
            projected_device_seconds=device_projection,
            projected_host_seconds=host_projection,
            resume_chunk=resume,
        )
        self._trace(
            event.sim_time - event.cost_seconds, HOST, "migration",
            f"migrate.{statement.name}",
        )
        return event

    # --- helpers -----------------------------------------------------------

    @staticmethod
    def _estimates_by_index(estimates: Sequence[LineEstimate]) -> Dict[int, LineEstimate]:
        return {e.index: e for e in estimates}

    @staticmethod
    def _total_csd_instructions(program: Program, plan, n: float) -> float:
        return sum(
            statement.instructions(n)
            for statement, where in zip(program, plan.assignments)
            if where == CSD
        ) or 1.0

    def _apply_progress_triggers(
        self,
        triggers: Sequence[ProgressTrigger],
        cursor: int,
        done_instr: float,
        total_instr: float,
    ) -> int:
        while cursor < len(triggers) and done_instr / total_instr >= triggers[cursor][0]:
            self.device.cse.set_availability(triggers[cursor][1])
            cursor += 1
        return cursor
