"""Runtime monitoring (paper §III-D).

ActivePy watches the throughput of code running on the CSD through the
status updates each line posts.  It re-estimates the remaining CSD time
when either

1. the observed IPC is *decreasing* across consecutive updates, or
2. the observed IPC falls significantly below the estimated instruction
   throughput (estimated instructions / estimated time).

The monitor never sees the simulator's availability knob — it infers
congestion purely from the architectural counters, exactly as the real
system must.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..config import SystemConfig
from .dispatch import StatusUpdate


@dataclass
class MonitorDecision:
    """What the monitor concluded after an observation."""

    reestimate: bool
    reason: str = ""
    #: Device availability inferred from IPC (observed / expected).
    inferred_availability: float = 1.0
    #: How far observed IPC has drifted below expectation, in [0, 1]:
    #: 0.0 = on prediction, 0.9 = running at a tenth of the predicted
    #: rate.  Surfaced so migration decisions are auditable against the
    #: planner's assumptions, not just a boolean trigger.
    ipc_drift: float = 0.0


@dataclass
class RuntimeMonitor:
    """Tracks CSD execution rate and flags degradation."""

    config: SystemConfig
    #: IPC the device should deliver when healthy (from the estimate).
    expected_ipc: float
    #: Number of consecutive strictly decreasing updates that counts
    #: as a downward trend.
    trend_window: int = 3
    _history: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.expected_ipc <= 0:
            raise ValueError(f"expected_ipc must be positive, got {self.expected_ipc}")
        if self.trend_window < 2:
            raise ValueError("trend_window must be at least 2")

    # --- observation ----------------------------------------------------------

    def observe(self, update: StatusUpdate) -> MonitorDecision:
        """Ingest one status update and decide whether to re-estimate."""
        ipc = max(0.0, update.ipc)
        self._history.append(ipc)
        inferred = min(1.0, ipc / self.expected_ipc) if self.expected_ipc else 1.0
        drift = max(0.0, 1.0 - inferred)

        if update.high_priority_pending:
            return MonitorDecision(
                reestimate=True,
                reason="device raised a high-priority request",
                inferred_availability=inferred,
                ipc_drift=drift,
            )
        if ipc < self.config.ipc_degradation_threshold * self.expected_ipc:
            return MonitorDecision(
                reestimate=True,
                reason=(
                    f"IPC {ipc:.3f} below "
                    f"{self.config.ipc_degradation_threshold:.0%} of expected "
                    f"{self.expected_ipc:.3f}"
                ),
                inferred_availability=inferred,
                ipc_drift=drift,
            )
        if self._is_decreasing():
            return MonitorDecision(
                reestimate=True,
                reason=f"IPC decreasing over the last {self.trend_window} updates",
                inferred_availability=inferred,
                ipc_drift=drift,
            )
        return MonitorDecision(
            reestimate=False, inferred_availability=inferred, ipc_drift=drift
        )

    def _is_decreasing(self) -> bool:
        if len(self._history) < self.trend_window:
            return False
        tail = self._history[-self.trend_window:]
        return all(later < earlier for earlier, later in zip(tail, tail[1:]))

    # --- re-estimation --------------------------------------------------------

    # NOTE: after a device-side chunk replay the executor calls
    # :meth:`reset` — IPC samples spanning a crash/replay boundary are
    # fault noise, and a "decreasing trend" assembled across one must
    # not trigger a spurious migration.

    def reestimate_remaining_seconds(
        self,
        remaining_device_compute_s: float,
        remaining_device_access_s: float,
        inferred_availability: float,
    ) -> float:
        """Project the remaining CSD time at the degraded rate.

        The estimated compute time stretches by the inferred
        availability; internal data access is DMA-driven and assumed
        unaffected by engine contention.
        """
        availability = max(1e-3, min(1.0, inferred_availability))
        return remaining_device_compute_s / availability + remaining_device_access_s

    def reset(self) -> None:
        self._history.clear()

    @property
    def observations(self) -> int:
        return len(self._history)

    @property
    def last_ipc(self) -> Optional[float]:
        return self._history[-1] if self._history else None

    @property
    def mean_drift(self) -> float:
        """Mean IPC drift over the observations since the last reset."""
        if not self._history or self.expected_ipc <= 0:
            return 0.0
        drifts = [
            max(0.0, 1.0 - min(1.0, ipc / self.expected_ipc))
            for ipc in self._history
        ]
        return sum(drifts) / len(drifts)
