"""Interconnect link model.

A :class:`Link` converts a transfer size into simulated time using a
bandwidth plus a fixed per-message latency, and keeps cumulative traffic
statistics.  Three links matter in the reproduction, mirroring Figure 1
of the paper:

* the host's storage-read path (shared PCIe 3.0, ~1.6 GB/s effective),
* the CSD-internal NAND bus (9 GB/s, measured in the paper's §IV-A),
* the device-to-host NVMe transfer path for processed data (~3 GB/s).
"""

from __future__ import annotations

from typing import Optional

from ..errors import HardwareError
from ..obs import Observability
from ..sim.clock import SimClock

__all__ = ["Link"]


class Link:
    """A point-to-point link with bandwidth, latency, and accounting."""

    def __init__(
        self,
        name: str,
        bandwidth: float,
        clock: SimClock,
        latency_s: float = 0.0,
        obs: Optional[Observability] = None,
        component: str = "pcie",
    ) -> None:
        if bandwidth <= 0:
            raise HardwareError(f"link {name!r} needs positive bandwidth, got {bandwidth}")
        if latency_s < 0:
            raise HardwareError(f"link {name!r} needs non-negative latency, got {latency_s}")
        self.name = name
        self.bandwidth = float(bandwidth)
        self.latency_s = float(latency_s)
        self.clock = clock
        self.bytes_transferred = 0.0
        self.transfers = 0
        self._degradation = 1.0
        # Armed in-flight corruptions: the next N payload transfers are
        # garbled but complete normally (fault injection; consumed by
        # the integrity layer's readback checks).
        self._corrupt_armed = 0
        self.corrupted_transfers = 0
        self.obs = obs if obs is not None else Observability.disabled()
        # Attribution bucket for time spent on this link: host-visible
        # links are "pcie"; the CSD-internal bus is built with "nand".
        self.component = component
        # Metric names precomputed so the hot path never formats strings.
        self._m_bytes = f"link.{name}.bytes"
        self._m_transfers = f"link.{name}.transfers"
        self._m_messages = f"link.{name}.messages"
        self._m_degradation = f"link.{name}.degradation"

    # --- degradation (fault injection) ---------------------------------

    @property
    def degradation(self) -> float:
        """Remaining bandwidth fraction (1.0 = healthy link)."""
        return self._degradation

    def set_degradation(self, factor: float) -> None:
        """Run the link at ``factor`` of its bandwidth.

        Models a transient PCIe retrain to a narrower width or lower
        speed; the :class:`~repro.faults.FaultInjector` opens and closes
        degradation windows through this hook.
        """
        if not 0 < factor <= 1:
            raise HardwareError(
                f"link {self.name!r} degradation factor must lie in (0, 1], got {factor}"
            )
        self._degradation = float(factor)
        if self.obs.enabled:
            self.obs.metrics.gauge(self._m_degradation).set(factor)

    # --- silent transfer corruption (fault injection) ------------------

    def arm_transfer_corruption(self, count: int = 1) -> None:
        """Garble the next ``count`` payload transfers in flight.

        The transfers still complete in normal time with no error —
        only an end-to-end checksum over the payload can tell.  Control
        messages (:meth:`message`) carry no payload and are unaffected.
        """
        if count < 1:
            raise HardwareError(
                f"link {self.name!r} corruption count must be >= 1, got {count}"
            )
        self._corrupt_armed += count

    @property
    def transfer_corruption_armed(self) -> bool:
        return self._corrupt_armed > 0

    def consume_transfer_corruption(self) -> bool:
        """True when the payload just moved across this link was garbled.

        Called by the consumer-side integrity checks after a payload
        transfer; decrements the armed count.  Free and silent — the
        link itself reports nothing.
        """
        if self._corrupt_armed <= 0:
            return False
        self._corrupt_armed -= 1
        self.corrupted_transfers += 1
        return True

    @property
    def effective_bandwidth(self) -> float:
        """Bandwidth currently deliverable, after any degradation."""
        return self.bandwidth * self._degradation

    def transfer_time(self, nbytes: float) -> float:
        """Seconds to move ``nbytes`` across the link."""
        if nbytes < 0:
            raise HardwareError(f"transfer size must be non-negative, got {nbytes}")
        if nbytes == 0:
            return 0.0
        return self.latency_s + nbytes / self.effective_bandwidth

    def transfer(self, nbytes: float) -> float:
        """Move ``nbytes`` synchronously; advance the clock.

        Returns the elapsed simulated time and updates traffic counters.
        Zero-byte transfers are free (no message is sent).
        """
        elapsed = self.transfer_time(nbytes)
        if elapsed > 0:
            self.clock.advance(elapsed, component=self.component)
        self.bytes_transferred += nbytes
        if nbytes > 0:
            self.transfers += 1
        self._record_traffic(nbytes)
        return elapsed

    def account(self, nbytes: float) -> None:
        """Record traffic without advancing time.

        Used by overlapped execution, where the enclosing chunk already
        advanced the clock by max(io, compute) and the link only needs
        its statistics updated.
        """
        if nbytes < 0:
            raise HardwareError(f"transfer size must be non-negative, got {nbytes}")
        self.bytes_transferred += nbytes
        if nbytes > 0:
            self.transfers += 1
        self._record_traffic(nbytes)

    def _record_traffic(self, nbytes: float) -> None:
        if self.obs.enabled:
            metrics = self.obs.metrics
            metrics.counter(self._m_bytes).inc(nbytes)
            if nbytes > 0:
                metrics.counter(self._m_transfers).inc()

    def message(self) -> float:
        """Send a minimal control message (doorbell, status update)."""
        self.clock.advance(self.latency_s, component=self.component)
        self.transfers += 1
        if self.obs.enabled:
            self.obs.metrics.counter(self._m_messages).inc()
        return self.latency_s

    def reset_stats(self) -> None:
        self.bytes_transferred = 0.0
        self.transfers = 0

    def __repr__(self) -> str:
        return f"Link(name={self.name!r}, bandwidth={self.bandwidth:.3g} B/s)"
