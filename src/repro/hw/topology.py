"""Machine topology: host + interconnect + CSD(s) wired together.

:func:`build_machine` constructs the platform of the paper's §IV-A —
an x86-class host, a PCIe 3.0 system interconnect, and a CSD — over one
shared simulator and one shared address space.  Everything above this
layer (the ActivePy runtime, the baselines, the benchmarks) receives a
:class:`Machine` and never constructs hardware directly.

The paper's runtime "can migrate tasks among different compute units"
including multiple CSDs; ``build_machine(num_csds=N)`` attaches N
devices (``csd``, ``csd1``, ``csd2``, …), each with its own NAND, CSE,
queue pair and BAR window.  A program offloads to the device that holds
its dataset (:meth:`Machine.device_holding`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from typing import Optional

from ..config import DEFAULT_CONFIG, SystemConfig
from ..errors import HardwareError, StorageError
from ..memory.address_space import SharedAddressSpace
from ..obs import Observability
from ..sim import Simulator
from ..storage.csd import ComputationalStorageDevice
from ..units import GIB
from .compute import ComputeUnit
from .interconnect import Link

__all__ = ["Machine", "build_machine"]


@dataclass
class Machine:
    """The simulated platform an experiment runs on."""

    config: SystemConfig
    simulator: Simulator
    space: SharedAddressSpace
    host: ComputeUnit
    csds: Tuple[ComputationalStorageDevice, ...]
    #: Host-visible storage read path (shared PCIe + filesystem).
    host_storage_link: Link
    #: Device-to-host transfer path for processed data (NVMe).
    d2h_link: Link
    #: Host load/store path into CSD memory after a migration (BAR).
    remote_access_link: Link
    #: The machine-wide observability handle, shared by reference with
    #: every component.  Disabled by default; see :mod:`repro.obs`.
    obs: Observability = field(default_factory=Observability.disabled)

    def __post_init__(self) -> None:
        if not self.csds:
            raise HardwareError("a machine needs at least one CSD")

    @property
    def csd(self) -> ComputationalStorageDevice:
        """The primary device (single-CSD code uses this)."""
        return self.csds[0]

    @property
    def now(self) -> float:
        return self.simulator.now

    def unit_named(self, name: str) -> ComputeUnit:
        """Resolve a compute unit by plan location name."""
        if name == "host":
            return self.host
        for device in self.csds:
            if name == device.name:
                return device.cse
        raise KeyError(f"no compute unit named {name!r}")

    def device_named(self, name: str) -> ComputationalStorageDevice:
        for device in self.csds:
            if device.name == name:
                return device
        raise KeyError(f"no CSD named {name!r}")

    def device_holding(self, dataset_name: str) -> ComputationalStorageDevice:
        """The CSD a dataset resides on (offload target resolution)."""
        for device in self.csds:
            if device.holds_dataset(dataset_name):
                return device
        raise StorageError(f"no attached CSD holds dataset {dataset_name!r}")

    def reset_counters(self) -> None:
        """Clear perf counters and link statistics (between phases)."""
        self.host.counters.reset()
        for device in self.csds:
            device.cse.counters.reset()
        for link in (self.host_storage_link, self.d2h_link, self.remote_access_link):
            link.reset_stats()


def build_machine(
    config: SystemConfig = DEFAULT_CONFIG,
    num_csds: int = 1,
    obs: Optional[Observability] = None,
) -> Machine:
    """Construct a fresh machine from a configuration.

    ``obs`` is the machine-wide observability handle; omit it for a
    disabled (zero-overhead) one.  Every component shares the handle by
    reference, so enabling it later — or pointing it at a caller's
    sinks via :meth:`~repro.obs.Observability.adopt` — takes effect
    everywhere at once.
    """
    if num_csds < 1:
        raise HardwareError(f"num_csds must be at least 1, got {num_csds}")
    if obs is None:
        obs = Observability.disabled()
    simulator = Simulator(obs=obs)
    obs.bind_clock(simulator.clock)
    space = SharedAddressSpace()
    # Host DRAM first so host allocations land at low addresses.
    space.map_region(name="host.dram", size=64 * GIB, location="host")
    host = ComputeUnit(name="host", ips=config.host_ips, clock=simulator.clock, obs=obs)
    csds = tuple(
        ComputationalStorageDevice(
            config=config,
            simulator=simulator,
            space=space,
            name="csd" if index == 0 else f"csd{index}",
            obs=obs,
        )
        for index in range(num_csds)
    )
    host_storage_link = Link(
        name="host-storage",
        bandwidth=config.bw_host_storage,
        clock=simulator.clock,
        latency_s=config.effective_link_latency_s,
        obs=obs,
    )
    d2h_link = Link(
        name="d2h",
        bandwidth=config.bw_d2h,
        clock=simulator.clock,
        latency_s=config.effective_link_latency_s,
        obs=obs,
    )
    remote_access_link = Link(
        name="remote-access",
        bandwidth=config.bw_remote_access,
        clock=simulator.clock,
        latency_s=config.effective_link_latency_s,
        obs=obs,
    )
    return Machine(
        config=config,
        simulator=simulator,
        space=space,
        host=host,
        csds=csds,
        host_storage_link=host_storage_link,
        d2h_link=d2h_link,
        remote_access_link=remote_access_link,
        obs=obs,
    )
