"""Hardware models: compute units, interconnect links, and topology."""

from .compute import ComputeUnit, PerfCounters
from .interconnect import Link
from .topology import Machine, build_machine

__all__ = ["ComputeUnit", "PerfCounters", "Link", "Machine", "build_machine"]
