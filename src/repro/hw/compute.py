"""Compute-unit models with performance counters.

A :class:`ComputeUnit` turns an instruction count into simulated time at
its current *effective* throughput, which is the nominal throughput
scaled by an availability factor in ``(0, 1]``.  Availability is how the
simulator models contention on the CSE: other tenants, firmware tasks,
or garbage collection stealing cycles (paper §II-B3).

Every unit keeps architectural :class:`PerfCounters` (retired
instructions, busy cycles).  ActivePy's monitor reads *only* these
counters — it never sees the availability knob directly — mirroring how
the real system infers congestion from a dropping IPC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import HardwareError
from ..obs import Observability
from ..sim.clock import SimClock

__all__ = ["ComputeUnit", "PerfCounters"]


@dataclass
class PerfCounters:
    """Architectural counters exposed by a compute unit.

    ``cycles`` accumulates wall cycles while the unit is busy, and
    ``retired_instructions`` the useful work done, so their ratio is the
    observed IPC that the ActivePy monitor consumes.
    """

    retired_instructions: float = 0.0
    cycles: float = 0.0
    busy_seconds: float = 0.0
    tasks_completed: int = 0
    _ipc_nominal: float = field(default=1.0, repr=False)

    def ipc(self) -> float:
        """Observed instructions-per-cycle since the last reset."""
        if self.cycles <= 0:
            return 0.0
        return self.retired_instructions / self.cycles

    def reset(self) -> None:
        self.retired_instructions = 0.0
        self.cycles = 0.0
        self.busy_seconds = 0.0
        self.tasks_completed = 0


class ComputeUnit:
    """A processor (host CPU or CSE) with throttleable throughput.

    Parameters
    ----------
    name:
        Identifier used in plans and reports (e.g. ``"host"``, ``"csd"``).
    ips:
        Nominal throughput in instructions per second.
    clock:
        Shared simulated clock; executing work advances it.
    clock_hz:
        Nominal core frequency, used only to convert busy time into
        cycles for the performance counters.
    obs:
        Shared observability handle; when enabled the unit feeds
        ``compute.<name>.*`` metrics (never advancing the clock).
    """

    def __init__(
        self,
        name: str,
        ips: float,
        clock: SimClock,
        clock_hz: float = 3.6e9,
        obs: Optional[Observability] = None,
    ) -> None:
        if ips <= 0:
            raise HardwareError(f"compute unit {name!r} needs positive ips, got {ips}")
        if clock_hz <= 0:
            raise HardwareError(f"compute unit {name!r} needs positive clock_hz")
        self.name = name
        self.nominal_ips = float(ips)
        self.clock = clock
        self.clock_hz = float(clock_hz)
        self.counters = PerfCounters(_ipc_nominal=ips / clock_hz)
        self._availability = 1.0
        self.obs = obs if obs is not None else Observability.disabled()
        # Which attribution bucket this unit's execution time lands in:
        # the host CPU is "host", every in-device engine is "cse".
        self.component = "host" if name == "host" else "cse"
        # Metric names precomputed so the hot path never formats strings.
        self._m_busy = f"compute.{name}.busy_seconds"
        self._m_instr = f"compute.{name}.instructions"
        self._m_tasks = f"compute.{name}.tasks"
        self._m_avail = f"compute.{name}.availability"

    # --- availability --------------------------------------------------

    @property
    def availability(self) -> float:
        """Fraction of the unit's cycles available to foreground work."""
        return self._availability

    def set_availability(self, fraction: float) -> None:
        """Throttle the unit to ``fraction`` of its nominal throughput.

        Models contention from co-located tasks or device-management
        work.  ``fraction`` must lie in (0, 1]; use a small positive
        value rather than zero for a fully congested unit so execution
        still makes (very slow) progress.
        """
        if not 0 < fraction <= 1:
            raise HardwareError(f"availability must lie in (0, 1], got {fraction}")
        self._availability = float(fraction)
        if self.obs.enabled:
            self.obs.metrics.gauge(self._m_avail).set(fraction)

    @property
    def effective_ips(self) -> float:
        """Throughput currently available to foreground work."""
        return self.nominal_ips * self._availability

    # --- execution ------------------------------------------------------

    def execution_time(self, instructions: float) -> float:
        """Seconds needed to retire ``instructions`` at current availability."""
        if instructions < 0:
            raise HardwareError(f"instruction count must be non-negative, got {instructions}")
        return instructions / self.effective_ips

    def execute(self, instructions: float) -> float:
        """Run ``instructions`` synchronously; advance the clock.

        Returns the elapsed simulated time.  Performance counters are
        charged with *wall* cycles (time × frequency) but only the
        foreground instructions retire, so the observed IPC degrades in
        proportion to lost availability — which is exactly the signal
        the ActivePy monitor keys on.
        """
        elapsed = self.execution_time(instructions)
        self.clock.advance(elapsed, component=self.component)
        self.counters.retired_instructions += instructions
        self.counters.cycles += elapsed * self.clock_hz
        self.counters.busy_seconds += elapsed
        self.counters.tasks_completed += 1
        self._record_work(instructions, elapsed)
        return elapsed

    def charge(self, instructions: float, elapsed: float) -> None:
        """Account work against externally managed time.

        Overlapped execution advances the clock once for a whole chunk
        (max of I/O and compute time); this books the retired
        instructions and busy cycles without touching the clock.
        """
        if instructions < 0 or elapsed < 0:
            raise HardwareError("charge needs non-negative instructions and time")
        self.counters.retired_instructions += instructions
        self.counters.cycles += elapsed * self.clock_hz
        self.counters.busy_seconds += elapsed
        self.counters.tasks_completed += 1
        self._record_work(instructions, elapsed)

    def _record_work(self, instructions: float, elapsed: float) -> None:
        if self.obs.enabled:
            metrics = self.obs.metrics
            metrics.counter(self._m_busy).inc(elapsed)
            metrics.counter(self._m_instr).inc(instructions)
            metrics.counter(self._m_tasks).inc()

    def expected_ipc(self) -> float:
        """IPC the unit would show when fully available."""
        return self.nominal_ips / self.clock_hz

    def __repr__(self) -> str:
        return (
            f"ComputeUnit(name={self.name!r}, ips={self.nominal_ips:.3g}, "
            f"availability={self._availability:.2f})"
        )
