"""Automated perf-regression gate over the benchmark suite's results.

See :mod:`repro.perfgate.gate` for the model.  CLI surface::

    python -m repro perf check      # diff fresh BENCH_*.json vs baselines
    python -m repro perf snapshot   # refresh committed baselines
"""

from .gate import (
    BASELINE_DIR_NAME,
    Deviation,
    GATED_METRICS,
    GateReport,
    GatedMetric,
    PerfGateError,
    check,
    load_results,
    lookup,
    snapshot,
)

__all__ = [
    "BASELINE_DIR_NAME",
    "Deviation",
    "GATED_METRICS",
    "GateReport",
    "GatedMetric",
    "PerfGateError",
    "check",
    "load_results",
    "lookup",
    "snapshot",
]
