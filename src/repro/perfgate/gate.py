"""The perf-regression gate over ``BENCH_*.json`` results.

The simulator is deterministic: simulated seconds for a given config
hash are the same on every machine, so a committed baseline can be
compared *exactly* — any drift is a code change, not noise.  The gate
therefore snapshots the **simulated** metrics of the benchmark suite
(``perf_baselines/<bench>.json``) and diffs fresh results against them
with explicit per-metric tolerances:

* direction ``max`` — a performance number that must not regress
  upward (sim seconds, slowdown factors).  Improvements pass silently;
  regressions beyond ``value * (1 + rel_tol) + abs_tol`` fail.
* direction ``both`` — an invariant pinned to a value (zero-overhead
  contracts).  Any deviation beyond the tolerance band fails, in either
  direction.

Raw wall-clock numbers (``*_wall_seconds``) are never gated — they
measure the host running the benchmarks, not the simulator.  Two
exceptions, both gated with deliberately generous tolerances that
absorb host-to-host variance: the ``wall`` bench's *dimensionless
ratios* (warm/cold, layer/baseline), which capture how much wall work
the performance layer removes, and the ``plansearch`` rotation's
search wall time, which bounds the planner's own cost so the search
never quietly grows into a second sampling phase.

``python -m repro perf check`` runs the diff (exit 1 on regression);
``python -m repro perf snapshot`` refreshes the baselines after an
*intentional* model change, which is the paved road for landing one:
the diff shows up in review as a baseline edit instead of sailing
through unnoticed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..errors import ReproError

__all__ = [
    "BASELINE_DIR_NAME",
    "Deviation",
    "GateReport",
    "GatedMetric",
    "GATED_METRICS",
    "PerfGateError",
    "check",
    "load_results",
    "lookup",
    "snapshot",
]

#: Default directory (repo-relative) holding committed baselines.
BASELINE_DIR_NAME = "perf_baselines"

#: Where fresh results are searched, in priority order.
_RESULT_DIRS = ("bench_results", ".")

_SCHEMA_VERSION = 1


class PerfGateError(ReproError):
    """Raised for malformed baselines/results, not for regressions."""


@dataclass(frozen=True)
class GatedMetric:
    """One deterministic metric worth guarding, with its tolerance."""

    path: str  # dotted path into the BENCH payload
    direction: str = "max"  # "max" = must not grow; "both" = pinned
    rel_tol: float = 0.0
    abs_tol: float = 0.0

    def limits(self, baseline: float) -> Tuple[float, float]:
        """(lo, hi) bounds a fresh value must respect."""
        slack = self.rel_tol * abs(baseline) + self.abs_tol
        if self.direction == "max":
            return (float("-inf"), baseline + slack)
        if self.direction == "both":
            return (baseline - slack, baseline + slack)
        raise PerfGateError(
            f"metric {self.path!r}: unknown direction {self.direction!r}"
        )


#: The gate's contract: every entry is a deterministic simulated-time
#: metric.  ``both`` + zero tolerance pins the zero-overhead invariants
#: exactly; ``max`` + small rel_tol lets improvements land silently but
#: fails regressions past the slack.
GATED_METRICS: Dict[str, Tuple[GatedMetric, ...]] = {
    "obs": (
        GatedMetric("per_workload.tpch_q6.sim_seconds", "max", rel_tol=0.01),
        GatedMetric("per_workload.kmeans.sim_seconds", "max", rel_tol=0.01),
        GatedMetric("per_workload.blackscholes.sim_seconds", "max", rel_tol=0.01),
        GatedMetric("per_workload.pagerank.sim_seconds", "max", rel_tol=0.01),
        GatedMetric("disabled_sim_overhead_seconds", "both"),
        GatedMetric("attribution.identity_residual", "both"),
        GatedMetric("attribution.sim_overhead_seconds", "both"),
        # The flight recorder's zero-simulated-overhead contract: a
        # 4-CSD fleet run with the recorder attached reports the same
        # makespan, bit for bit, as one without.
        GatedMetric("timeseries.recorder_sim_overhead_seconds", "both"),
        GatedMetric("timeseries.makespan_s", "both"),
    ),
    "faults": (
        GatedMetric("no_fault_overhead.overhead_fraction", "both"),
        GatedMetric("crash_recovery.healthy_seconds", "max", rel_tol=0.01),
        GatedMetric("crash_recovery.slowdown", "max", rel_tol=0.02),
    ),
    "checkpoint": (
        GatedMetric("fault_free_overhead.overhead_seconds", "both"),
        GatedMetric("fault_free_overhead.enabled_seconds", "max", rel_tol=0.01),
        GatedMetric(
            "torn_write_recovery.crash_torn_records_seconds", "max", rel_tol=0.02
        ),
    ),
    "fleet": (
        # The multi-CSD story: four devices must keep finishing the
        # saturating workload in at most ~1/3 the one-device makespan.
        # Gating the *fraction* (not the speedup) keeps the direction
        # "max": a scheduler change that erodes scale-out grows it.
        GatedMetric("scale_out.fraction_of_one_device", "max", rel_tol=0.02),
        GatedMetric("scale_out.one_device_makespan_s", "max", rel_tol=0.01),
        GatedMetric("scale_out.four_device_makespan_s", "max", rel_tol=0.01),
        GatedMetric("failover.loss_makespan_s", "max", rel_tol=0.02),
    ),
    "integrity": (
        # The "disabled means free" contract, pinned at exactly zero:
        # any simulated cost leaking out of the off-by-default layer is
        # a regression in either direction.
        GatedMetric("disabled_overhead.overhead_seconds", "both"),
        GatedMetric("protection_cost.enabled_seconds", "max", rel_tol=0.01),
        GatedMetric("protection_cost.overhead_seconds", "max", rel_tol=0.02),
        GatedMetric("detection_recovery.corrupted_seconds", "max", rel_tol=0.02),
    ),
    "plansearch": (
        # The §V CSR payoff, pinned from both sides: greedy's makespan
        # (the baseline the search must beat) and the search's strictly
        # better one, on both workloads where Eq. 1's fitted volume
        # curve misleads Algorithm 1.
        GatedMetric("per_workload.pagerank.greedy_makespan_s", "max", rel_tol=0.01),
        GatedMetric("per_workload.pagerank.search_makespan_s", "max", rel_tol=0.01),
        GatedMetric("per_workload.sparsemv.greedy_makespan_s", "max", rel_tol=0.01),
        GatedMetric("per_workload.sparsemv.search_makespan_s", "max", rel_tol=0.01),
        # Structural never-worse guarantee over the whole rotation: the
        # worst (search - greedy) delta must stay at or below zero.
        GatedMetric("never_worse.max_search_minus_greedy_s", "max", abs_tol=1e-9),
        # How many strict wins short of the required two (pinned at 0).
        GatedMetric("never_worse.strict_win_deficit", "both"),
        # Host wall time of searching the full rotation: generous band
        # (wall is noisy) but bounded — the search must stay cheap
        # planning work, not grow into a second sampling phase.
        GatedMetric(
            "wall.rotation_search_wall_seconds", "max", rel_tol=1.5, abs_tol=5.0
        ),
    ),
    # Wall-clock ratios, not simulated seconds: noisy by nature, hence
    # the wide bands.  A fraction that *grows* past the slack means the
    # performance layer stopped removing wall work (e.g. the profile
    # cache stopped hitting), which is exactly what to catch.
    "wall": (
        GatedMetric("warm_run.fraction_of_cold", "max", rel_tol=1.5),
        GatedMetric("parallel_campaign.fraction_of_serial", "max", rel_tol=1.5),
        GatedMetric("engine_microbench.fraction_of_object", "max", rel_tol=1.5),
    ),
}


def lookup(payload: Dict, path: str) -> Optional[float]:
    """Resolve a dotted path into a nested dict; None when absent."""
    node = payload
    for key in path.split("."):
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return None
    return float(node)


def load_results(bench: str, root: Path) -> Optional[Dict]:
    """Read ``BENCH_<bench>.json``, preferring ``bench_results/``."""
    for directory in _RESULT_DIRS:
        path = root / directory / f"BENCH_{bench}.json"
        if path.exists():
            try:
                return json.loads(path.read_text(encoding="utf-8"))
            except ValueError as exc:
                raise PerfGateError(f"unreadable benchmark results {path}: {exc}")
    return None


@dataclass(frozen=True)
class Deviation:
    """One gated metric that left its tolerance band."""

    bench: str
    path: str
    baseline: float
    actual: float
    lo: float
    hi: float
    direction: str

    def render(self) -> str:
        band = (
            f"<= {self.hi:.9g}"
            if self.direction == "max"
            else f"[{self.lo:.9g}, {self.hi:.9g}]"
        )
        return (
            f"REGRESSION {self.bench}:{self.path}  "
            f"baseline {self.baseline:.9g} -> actual {self.actual:.9g} "
            f"(allowed {band})"
        )


@dataclass
class GateReport:
    """Outcome of one ``perf check``: what was compared, what failed."""

    checked: int = 0
    deviations: List[Deviation] = field(default_factory=list)
    missing_results: List[str] = field(default_factory=list)
    missing_metrics: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (self.deviations or self.missing_results or self.missing_metrics)

    def render(self) -> str:
        lines = [
            f"perf gate: {self.checked} metric(s) checked against baselines"
        ]
        for name in self.missing_results:
            lines.append(
                f"  MISSING results for bench {name!r} — run the benchmark "
                f"suite first (pytest benchmarks/bench_{name}.py "
                f"--benchmark-disable)"
            )
        for path in self.missing_metrics:
            lines.append(f"  MISSING metric {path} in fresh results")
        for deviation in self.deviations:
            lines.append(f"  {deviation.render()}")
        lines.append("PASS" if self.ok else "FAIL")
        return "\n".join(lines)

    def to_jsonable(self) -> Dict:
        return {
            "ok": self.ok,
            "checked": self.checked,
            "deviations": [
                {
                    "bench": d.bench,
                    "path": d.path,
                    "baseline": d.baseline,
                    "actual": d.actual,
                    "lo": d.lo,
                    "hi": d.hi,
                    "direction": d.direction,
                }
                for d in self.deviations
            ],
            "missing_results": list(self.missing_results),
            "missing_metrics": list(self.missing_metrics),
        }


def _baseline_path(baselines_dir: Path, bench: str) -> Path:
    return baselines_dir / f"{bench}.json"


def snapshot(root: Path, baselines_dir: Optional[Path] = None) -> List[Path]:
    """Capture current results as the committed baselines.

    Reads each bench's fresh ``BENCH_*.json``, extracts exactly the
    gated metrics, and writes ``<baselines_dir>/<bench>.json``.  Fails
    loudly if a gated metric is absent — a baseline with holes would
    silently stop guarding it.
    """
    baselines_dir = baselines_dir or root / BASELINE_DIR_NAME
    baselines_dir.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for bench, metrics in sorted(GATED_METRICS.items()):
        payload = load_results(bench, root)
        if payload is None:
            raise PerfGateError(
                f"no BENCH_{bench}.json found under {root}; "
                f"run the benchmark suite before snapshotting"
            )
        entry: Dict[str, Dict] = {}
        for metric in metrics:
            value = lookup(payload, metric.path)
            if value is None:
                raise PerfGateError(
                    f"bench {bench!r} results lack gated metric {metric.path!r}"
                )
            entry[metric.path] = {
                "value": value,
                "direction": metric.direction,
                "rel_tol": metric.rel_tol,
                "abs_tol": metric.abs_tol,
            }
        path = _baseline_path(baselines_dir, bench)
        path.write_text(
            json.dumps(
                {
                    "schema_version": _SCHEMA_VERSION,
                    "bench": bench,
                    "metrics": entry,
                },
                indent=2,
                sort_keys=True,
            )
            + "\n",
            encoding="utf-8",
        )
        written.append(path)
    return written


def check(
    root: Path,
    baselines_dir: Optional[Path] = None,
    planted_regression: bool = False,
) -> GateReport:
    """Diff fresh benchmark results against the committed baselines.

    ``planted_regression`` perturbs every fresh value *in memory* (50%
    worse) before comparing — the CI smoke test that proves the gate
    can actually fail.  Baselines with no committed file are reported
    as missing rather than silently passing.
    """
    baselines_dir = baselines_dir or root / BASELINE_DIR_NAME
    report = GateReport()
    for bench in sorted(GATED_METRICS):
        baseline_path = _baseline_path(baselines_dir, bench)
        if not baseline_path.exists():
            report.missing_results.append(f"{bench} (no committed baseline)")
            continue
        try:
            baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
        except ValueError as exc:
            raise PerfGateError(f"unreadable baseline {baseline_path}: {exc}")
        results = load_results(bench, root)
        if results is None:
            report.missing_results.append(bench)
            continue
        for path, spec in sorted(baseline.get("metrics", {}).items()):
            value = spec["value"]
            metric = GatedMetric(
                path=path,
                direction=spec.get("direction", "max"),
                rel_tol=spec.get("rel_tol", 0.0),
                abs_tol=spec.get("abs_tol", 0.0),
            )
            actual = lookup(results, path)
            if actual is None:
                report.missing_metrics.append(f"{bench}:{path}")
                continue
            if planted_regression:
                # Worse in the gated direction: bigger for "max", and
                # pushed off the pin (plus a floor for zero-pinned
                # invariants) for "both".  Scale past the metric's own
                # tolerance band so even generously-gated metrics (the
                # wall fractions) are pushed out of bounds.
                factor = 1.5 + metric.rel_tol
                actual = actual * factor + metric.abs_tol + 1e-6
            lo, hi = metric.limits(value)
            report.checked += 1
            if not (lo <= actual <= hi):
                report.deviations.append(
                    Deviation(
                        bench=bench,
                        path=path,
                        baseline=value,
                        actual=actual,
                        lo=lo,
                        hi=hi,
                        direction=metric.direction,
                    )
                )
    return report
