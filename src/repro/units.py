"""Unit constants and formatting helpers.

The simulator works in base SI units throughout: bytes for sizes,
seconds for times, instructions for work.  These helpers exist so call
sites read as ``9.1 * GB`` instead of ``9.1e9``, and so reports print
human-readable figures.
"""

from __future__ import annotations

# Decimal (storage-vendor) units -- the paper quotes GB/sec figures in
# these, e.g. the 9 GB/s internal NAND bandwidth.
KB = 10**3
MB = 10**6
GB = 10**9
TB = 10**12

# Binary units, for DRAM-style capacities.
KIB = 2**10
MIB = 2**20
GIB = 2**30

# Work units.
GIPS = 10**9  # giga-instructions per second

MICROSECOND = 1e-6
MILLISECOND = 1e-3


def format_bytes(n: float) -> str:
    """Render a byte count with a scaled decimal suffix.

    >>> format_bytes(9.1e9)
    '9.10 GB'
    >>> format_bytes(512)
    '512 B'
    """
    if n < 0:
        raise ValueError(f"byte count must be non-negative, got {n}")
    for factor, suffix in ((TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB")):
        if n >= factor:
            return f"{n / factor:.2f} {suffix}"
    return f"{n:.0f} B"


def format_seconds(t: float) -> str:
    """Render a duration with an appropriate scale.

    >>> format_seconds(0.0000031)
    '3.10 us'
    >>> format_seconds(73.2)
    '73.20 s'
    """
    if t < 0:
        raise ValueError(f"duration must be non-negative, got {t}")
    if t >= 1.0:
        return f"{t:.2f} s"
    if t >= MILLISECOND:
        return f"{t / MILLISECOND:.2f} ms"
    return f"{t / MICROSECOND:.2f} us"


def format_rate(bytes_per_second: float) -> str:
    """Render a bandwidth figure.

    >>> format_rate(9e9)
    '9.00 GB/s'
    """
    return f"{format_bytes(bytes_per_second)}/s"
