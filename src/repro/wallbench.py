"""Wall-clock benchmark of the performance layer (``BENCH_wall.json``).

Everything else under ``benchmarks/`` reports **simulated** seconds,
which are deterministic and machine-independent.  This module measures
the opposite thing: how long the *host* takes to produce those results,
and how much of that time the performance layer (profile/plan cache,
vectorised kernels, parallel campaign runner) removes.

Two scenarios:

``warm_run``
    ``ActivePy.run`` on a cold profile cache vs. the same run again
    warm.  The warm run skips sampling + curve fitting — the dominant
    wall cost — while charging identical simulated time, which the
    benchmark asserts.

``parallel_campaign``
    A chaos campaign with the performance layer on (profile cache +
    ``run_campaign_parallel``) vs. the pre-layer baseline (cache
    disabled, serial loop).  Outcomes are asserted identical.

``engine_microbench``
    Raw event throughput of the array event engine vs. the reference
    object engine: schedule N events at random timestamps, drain them
    all, per engine.  Both arms must fire every event; the gate checks
    the dimensionless wall-time fraction.

Wall numbers vary machine to machine, so the perf gate checks the
dimensionless *fractions* (warm/cold, layer/baseline) with generous
tolerances rather than the raw seconds.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from contextlib import contextmanager
from dataclasses import asdict
from hashlib import sha256
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from .chaos.campaign import CampaignConfig, run_campaign
from .config import DEFAULT_CONFIG
from .errors import ReproError
from .hw.topology import build_machine
from .parallel import run_campaign_parallel
from .runtime.activepy import ActivePy
from .runtime.profcache import ProfileCache
from .workloads import get_workload

__all__ = [
    "bench_engine_microbench",
    "bench_parallel_campaign",
    "bench_warm_run",
    "run_wall_bench",
    "write_wall_bench",
]

_SCHEMA_VERSION = 2

#: Defaults sized so the whole benchmark stays under ~a minute while
#: the cache/runner effects dominate process-start noise.
WARM_WORKLOADS = ("kmeans", "tpch_q6")
WARM_SCALE = 2 ** -6
CAMPAIGN_RUNS = 24
CAMPAIGN_SCALE = 2 ** -3
CAMPAIGN_WORKERS = 4
MICROBENCH_EVENTS = 200_000


def _noop() -> None:
    """Zero-cost event callback for the engine microbenchmark."""


@contextmanager
def _profcache_disabled():
    """Run a block with the process-wide profile cache off."""
    previous = os.environ.get("REPRO_PROFCACHE")
    os.environ["REPRO_PROFCACHE"] = "0"
    try:
        yield
    finally:
        if previous is None:
            del os.environ["REPRO_PROFCACHE"]
        else:
            os.environ["REPRO_PROFCACHE"] = previous


def bench_warm_run(
    workload_name: str = "kmeans",
    scale: float = WARM_SCALE,
    repeats: int = 3,
) -> Dict[str, Any]:
    """Cold-cache vs. warm-cache ``ActivePy.run`` wall time (best-of)."""
    workload = get_workload(workload_name, scale=scale)
    with tempfile.TemporaryDirectory(prefix="repro-wallbench-") as tmp:
        cache = ProfileCache(Path(tmp))
        runtime = ActivePy(profile_cache=cache)

        def one_run():
            machine = build_machine(DEFAULT_CONFIG)
            start = time.perf_counter()
            report = runtime.run(
                workload.program, workload.dataset, machine=machine,
            )
            return time.perf_counter() - start, report

        cold_s = float("inf")
        cold_report = None
        for _ in range(repeats):
            cache.clear()
            elapsed, cold_report = one_run()
            cold_s = min(cold_s, elapsed)
        warm_s = float("inf")
        warm_report = None
        for _ in range(repeats):
            elapsed, warm_report = one_run()
            warm_s = min(warm_s, elapsed)

    assert cold_report is not None and warm_report is not None
    if warm_report.total_seconds != cold_report.total_seconds:
        raise ReproError(
            f"warm run changed simulated time for {workload_name}: "
            f"{cold_report.total_seconds!r} -> {warm_report.total_seconds!r}"
        )
    if warm_report.plan.assignments != cold_report.plan.assignments:
        raise ReproError(f"warm run changed the plan for {workload_name}")
    if not warm_report.sampling_cached:
        raise ReproError(f"warm run missed the cache for {workload_name}")
    return {
        "workload": workload_name,
        "scale": scale,
        "cold_wall_seconds": cold_s,
        "warm_wall_seconds": warm_s,
        "speedup": cold_s / warm_s,
        "fraction_of_cold": warm_s / cold_s,
        "sim_seconds": cold_report.total_seconds,
    }


def bench_parallel_campaign(
    runs: int = CAMPAIGN_RUNS,
    scale: float = CAMPAIGN_SCALE,
    workers: int = CAMPAIGN_WORKERS,
) -> Dict[str, Any]:
    """Performance layer on (cache + workers) vs. the serial baseline.

    The baseline arm is the pre-layer behaviour: profile cache disabled
    and the serial campaign loop.  The layer arm runs the same campaign
    through :func:`~repro.parallel.run_campaign_parallel` with a fresh
    cache directory.  Both arms skip per-run metric snapshots so the
    comparison is runner vs. runner, not snapshot cost.
    """
    config = CampaignConfig(runs=runs, scale=scale, collect_metrics=False)

    with _profcache_disabled():
        start = time.perf_counter()
        serial = run_campaign(config)
        serial_s = time.perf_counter() - start

    with tempfile.TemporaryDirectory(prefix="repro-wallbench-") as tmp:
        previous = os.environ.get("REPRO_CACHE_DIR")
        os.environ["REPRO_CACHE_DIR"] = tmp
        try:
            start = time.perf_counter()
            parallel = run_campaign_parallel(config, workers=workers)
            parallel_s = time.perf_counter() - start
        finally:
            if previous is None:
                del os.environ["REPRO_CACHE_DIR"]
            else:
                os.environ["REPRO_CACHE_DIR"] = previous

    serial_outcomes = [outcome.summary() for outcome in serial.outcomes]
    parallel_outcomes = [outcome.summary() for outcome in parallel.outcomes]
    if serial_outcomes != parallel_outcomes:
        raise ReproError(
            "parallel campaign outcomes differ from the serial baseline"
        )
    return {
        "runs": runs,
        "scale": scale,
        "workers": workers,
        "serial_wall_seconds": serial_s,
        "parallel_wall_seconds": parallel_s,
        "speedup": serial_s / parallel_s,
        "fraction_of_serial": parallel_s / serial_s,
        "outcomes_identical": True,
        "campaign_ok": parallel.ok,
    }


def bench_engine_microbench(
    events: int = MICROBENCH_EVENTS,
    repeats: int = 3,
) -> Dict[str, Any]:
    """Events/second of the array engine vs. the object engine.

    One arm per engine: schedule ``events`` callbacks at seeded random
    timestamps (the array arm through the vectorised
    ``schedule_batch``, the object arm through per-event
    ``schedule_at`` — each engine's idiomatic bulk path), then
    ``run_all`` drains everything.  Best-of-``repeats`` per arm; both
    arms must fire exactly ``events`` events.
    """
    import numpy as np

    from .sim import Simulator

    rng = np.random.default_rng(20230423)
    times = np.ascontiguousarray(rng.random(events) * 100.0)

    def one_arm(engine: str) -> float:
        best = float("inf")
        for _ in range(repeats):
            sim = Simulator(engine=engine)
            start = time.perf_counter()
            if engine == "array":
                sim.schedule_batch(times, _noop)
            else:
                schedule_at = sim.schedule_at
                for timestamp in times.tolist():
                    schedule_at(timestamp, _noop)
            sim.run_all(max_events=events)
            best = min(best, time.perf_counter() - start)
            if sim.events_fired != events:
                raise ReproError(
                    f"{engine} engine fired {sim.events_fired} of "
                    f"{events} scheduled events"
                )
        return best

    object_s = one_arm("object")
    array_s = one_arm("array")
    return {
        "events": events,
        "object_wall_seconds": object_s,
        "array_wall_seconds": array_s,
        "object_events_per_second": events / object_s,
        "array_events_per_second": events / array_s,
        "speedup": object_s / array_s,
        "fraction_of_object": array_s / object_s,
    }


def run_wall_bench(
    workers: int = CAMPAIGN_WORKERS,
    repeats: int = 3,
) -> Dict[str, Any]:
    """Run all scenarios and assemble the BENCH_wall payload."""
    warm_runs = {
        name: bench_warm_run(name, repeats=repeats) for name in WARM_WORKLOADS
    }
    headline = warm_runs[WARM_WORKLOADS[0]]
    campaign = bench_parallel_campaign(workers=workers)
    micro = bench_engine_microbench(repeats=repeats)
    return {
        "warm_run": {
            **headline,
            "per_workload": warm_runs,
        },
        "parallel_campaign": campaign,
        "engine_microbench": micro,
    }


def _config_hash() -> str:
    payload = json.dumps(asdict(DEFAULT_CONFIG), sort_keys=True, default=str)
    return sha256(payload.encode("utf-8")).hexdigest()[:12]


def write_wall_bench(
    payload: Dict[str, Any],
    root: Optional[Path] = None,
    workers: int = CAMPAIGN_WORKERS,
    merge: bool = False,
) -> Tuple[Path, Path]:
    """Write the dual BENCH_wall.json files (root + ``bench_results/``).

    Mirrors the benchmark harness convention: the root copy keeps the
    bare payload, the canonical ``bench_results/`` copy wraps it in the
    schema-v2 envelope with run metadata.  ``merge`` folds ``payload``
    into whatever the root copy already holds, so bench tests that each
    produce one section accumulate into a single valid file.
    """
    from . import __version__

    root = Path(root) if root is not None else Path.cwd()
    root_path = root / "BENCH_wall.json"
    if merge and root_path.exists():
        try:
            existing = json.loads(root_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            existing = {}
        for key in ("schema_version", "meta"):
            existing.pop(key, None)
        existing.update(payload)
        payload = existing
    root_path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    results_dir = root / "bench_results"
    results_dir.mkdir(parents=True, exist_ok=True)
    canonical = results_dir / "BENCH_wall.json"
    envelope = {
        "schema_version": _SCHEMA_VERSION,
        "meta": {
            "bench": "wall",
            "config_hash": _config_hash(),
            "repro_version": __version__,
            "cpu_count": os.cpu_count(),
            "workers": workers,
            "note": (
                "wall-clock host timings; raw seconds vary by machine, "
                "the perf gate checks only the dimensionless fractions"
            ),
        },
        **payload,
    }
    canonical.write_text(
        json.dumps(envelope, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return root_path, canonical
