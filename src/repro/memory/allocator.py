"""First-fit free-list allocator with coalescing.

One allocator manages one contiguous memory region (host DRAM or a BAR
window over device DRAM).  It hands out :class:`Allocation` records and
merges adjacent free ranges on release, so long-running ActivePy
programs do not fragment device memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AllocationError


@dataclass(frozen=True)
class Allocation:
    """A live allocation inside a region (addresses are absolute)."""

    address: int
    size: int

    @property
    def end(self) -> int:
        return self.address + self.size


def _align_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment


class FreeListAllocator:
    """Allocates from [base, base+capacity) using first-fit."""

    def __init__(self, base: int, capacity: int) -> None:
        if capacity <= 0:
            raise AllocationError(f"capacity must be positive, got {capacity}")
        if base < 0:
            raise AllocationError(f"base must be non-negative, got {base}")
        self.base = base
        self.capacity = capacity
        #: Sorted list of (start, size) free ranges.
        self._free: list[tuple[int, int]] = [(base, capacity)]
        self._live: dict[int, Allocation] = {}

    # --- queries -----------------------------------------------------------

    @property
    def bytes_free(self) -> int:
        return sum(size for _, size in self._free)

    @property
    def bytes_allocated(self) -> int:
        return self.capacity - self.bytes_free

    @property
    def live_allocations(self) -> int:
        return len(self._live)

    def largest_free_block(self) -> int:
        return max((size for _, size in self._free), default=0)

    # --- operations -----------------------------------------------------------

    def allocate(self, size: int, alignment: int = 8) -> Allocation:
        """Reserve ``size`` bytes at the given power-of-two alignment."""
        if size <= 0:
            raise AllocationError(f"allocation size must be positive, got {size}")
        if alignment <= 0 or alignment & (alignment - 1):
            raise AllocationError(f"alignment must be a positive power of two, got {alignment}")
        for index, (start, span) in enumerate(self._free):
            aligned = _align_up(start, alignment)
            padding = aligned - start
            if span < padding + size:
                continue
            allocation = Allocation(address=aligned, size=size)
            remaining_before = (start, padding) if padding else None
            tail_start = aligned + size
            tail_size = span - padding - size
            remaining_after = (tail_start, tail_size) if tail_size else None
            replacement = [r for r in (remaining_before, remaining_after) if r]
            self._free[index:index + 1] = replacement
            self._live[allocation.address] = allocation
            return allocation
        raise AllocationError(
            f"out of memory: requested {size} bytes, "
            f"largest free block is {self.largest_free_block()}"
        )

    def free(self, allocation: Allocation) -> None:
        """Release an allocation and coalesce neighbouring free ranges."""
        live = self._live.pop(allocation.address, None)
        if live is None or live.size != allocation.size:
            raise AllocationError(f"not a live allocation: {allocation}")
        start, size = allocation.address, allocation.size
        merged = []
        inserted = False
        for free_start, free_size in self._free:
            if not inserted and free_start > start:
                merged.append((start, size))
                inserted = True
            merged.append((free_start, free_size))
        if not inserted:
            merged.append((start, size))
        # Coalesce adjacent ranges.
        coalesced: list[tuple[int, int]] = []
        for free_start, free_size in merged:
            if coalesced and coalesced[-1][0] + coalesced[-1][1] == free_start:
                prev_start, prev_size = coalesced.pop()
                coalesced.append((prev_start, prev_size + free_size))
            else:
                coalesced.append((free_start, free_size))
        self._free = coalesced

    def contains(self, address: int) -> bool:
        return self.base <= address < self.base + self.capacity
