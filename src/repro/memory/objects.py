"""Mutable memory objects shared across host and CSD code.

The paper's copy-elimination optimisation (§III-C0c) places values
exchanged between function calls in *mutable* memory so caller and
callee share the same locations, and emits library results (e.g. NumPy
arrays) directly into the destination buffer.  :class:`MutableBuffer`
models such an object: it knows where it lives, can move between
regions (with byte-accounting for the interconnect), and counts the
redundant copies that call-by-reference avoided.
"""

from __future__ import annotations

from typing import Any, Optional

from ..errors import AddressError
from .address_space import MemoryRegion, SharedAddressSpace
from .allocator import Allocation


class MutableBuffer:
    """A named, placed, call-by-reference data object.

    Parameters
    ----------
    name:
        Human-readable identifier (usually the Python variable name).
    nbytes:
        Logical size of the object at full input scale.
    space:
        The shared address space to allocate in.
    location:
        Physical home to place the object at ("host" or device name).
    payload:
        Optional real data (a NumPy array at sample scale) carried for
        functional execution in tests and examples.
    """

    def __init__(
        self,
        name: str,
        nbytes: int,
        space: SharedAddressSpace,
        location: str = "host",
        payload: Any = None,
    ) -> None:
        if nbytes <= 0:
            raise AddressError(f"buffer {name!r} needs positive size, got {nbytes}")
        self.name = name
        self.nbytes = int(nbytes)
        self._space = space
        self._allocation: Allocation = space.allocate_at(location, self.nbytes)
        self.payload = payload
        self.copies_avoided = 0
        self.bytes_moved = 0
        self.moves = 0

    # --- placement -----------------------------------------------------------

    @property
    def address(self) -> int:
        return self._allocation.address

    @property
    def region(self) -> MemoryRegion:
        return self._space.region_of(self._allocation.address)

    @property
    def location(self) -> str:
        """Physical home of the bytes right now."""
        return self.region.location

    def move_to(self, location: str) -> int:
        """Relocate the object to another physical home.

        Returns the number of bytes that crossed the interconnect
        (zero when already resident).  The old allocation is released
        after the copy, as real migration code would.
        """
        if self.location == location:
            return 0
        new_allocation = self._space.allocate_at(location, self.nbytes)
        self._space.free(self._allocation)
        self._allocation = new_allocation
        self.bytes_moved += self.nbytes
        self.moves += 1
        return self.nbytes

    # --- call-by-reference accounting -----------------------------------------

    def share(self) -> "MutableBuffer":
        """Pass this object by reference instead of copying it.

        Returns ``self`` and records the copy that a boxed,
        value-passing runtime would have made.
        """
        self.copies_avoided += 1
        return self

    def release(self) -> None:
        """Free the underlying allocation (the object becomes invalid)."""
        self._space.free(self._allocation)

    def __repr__(self) -> str:
        return (
            f"MutableBuffer(name={self.name!r}, nbytes={self.nbytes}, "
            f"location={self.location!r})"
        )


def place_near_consumer(
    name: str,
    nbytes: int,
    space: SharedAddressSpace,
    consumer_location: str,
    payload: Optional[Any] = None,
) -> MutableBuffer:
    """Allocate a buffer at its consumer's location (the paper's policy).

    Falls back to the host if the consumer's memory cannot hold it.
    """
    try:
        return MutableBuffer(name, nbytes, space, location=consumer_location, payload=payload)
    except AddressError:
        if consumer_location == "host":
            raise
        return MutableBuffer(name, nbytes, space, location="host", payload=payload)
