"""Single shared address space spanning host and device memory."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import AddressError
from .allocator import Allocation, FreeListAllocator


@dataclass
class MemoryRegion:
    """A contiguous window of the shared address space.

    ``location`` names the physical home of the bytes (``"host"`` or a
    device name such as ``"csd"``); the near-consumer placement policy
    keys on it.
    """

    name: str
    base: int
    size: int
    location: str
    allocator: FreeListAllocator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise AddressError(f"region {self.name!r} needs positive size")
        if self.base < 0:
            raise AddressError(f"region {self.name!r} needs non-negative base")
        self.allocator = FreeListAllocator(self.base, self.size)

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end


class SharedAddressSpace:
    """Registry of non-overlapping regions with address translation.

    The host program sees one flat space; translation tells the runtime
    which physical home an address falls in, which drives transfer-cost
    accounting (an access to a remote region crosses the interconnect).
    """

    def __init__(self) -> None:
        self._regions: list[MemoryRegion] = []

    @property
    def regions(self) -> tuple[MemoryRegion, ...]:
        return tuple(self._regions)

    def map_region(self, name: str, size: int, location: str) -> MemoryRegion:
        """Map a new region after all existing ones.

        Regions are packed contiguously; the next base is the previous
        region's end, so the space never overlaps by construction.
        """
        if any(region.name == name for region in self._regions):
            raise AddressError(f"region name {name!r} already mapped")
        base = self._regions[-1].end if self._regions else 0
        region = MemoryRegion(name=name, base=base, size=size, location=location)
        self._regions.append(region)
        return region

    def region_of(self, address: int) -> MemoryRegion:
        """Translate an address to its containing region."""
        for region in self._regions:
            if region.contains(address):
                return region
        raise AddressError(f"address {address:#x} is not mapped")

    def region_named(self, name: str) -> MemoryRegion:
        for region in self._regions:
            if region.name == name:
                return region
        raise AddressError(f"no region named {name!r}")

    def regions_at(self, location: str) -> list[MemoryRegion]:
        """All regions physically homed at ``location``."""
        return [region for region in self._regions if region.location == location]

    def allocate_at(self, location: str, size: int, alignment: int = 8) -> Allocation:
        """Allocate ``size`` bytes in any region homed at ``location``."""
        last_error: Optional[Exception] = None
        for region in self.regions_at(location):
            try:
                return region.allocator.allocate(size, alignment)
            except Exception as exc:  # try the next region at this location
                last_error = exc
        if last_error is not None:
            raise AddressError(
                f"no region at {location!r} can hold {size} bytes"
            ) from last_error
        raise AddressError(f"no region mapped at location {location!r}")

    def free(self, allocation: Allocation) -> None:
        region = self.region_of(allocation.address)
        region.allocator.free(allocation)
