"""Shared host/CSD memory abstraction.

ActivePy runs host and CSD code in a single address space (paper
§III-C0a): device DRAM is exposed through PCIe BARs and mapped into the
program's virtual memory, so both sides access data with plain
load/store semantics and the allocator can place objects *near their
consumer*.  This package provides the address space, a first-fit
free-list allocator, and mutable buffer objects whose placement and
movement the runtime tracks.
"""

from .address_space import MemoryRegion, SharedAddressSpace
from .allocator import Allocation, FreeListAllocator
from .objects import MutableBuffer

__all__ = [
    "MemoryRegion",
    "SharedAddressSpace",
    "Allocation",
    "FreeListAllocator",
    "MutableBuffer",
]
