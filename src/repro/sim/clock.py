"""Simulated monotonic clock.

The whole machine shares one :class:`SimClock`.  Time only moves
forward: synchronous costs (compute, transfers, media latency) call
:meth:`SimClock.advance`, and the event engine calls
:meth:`SimClock.advance_to` when it dequeues the next event.  All
timestamps are floats in simulated seconds since machine construction.

Because every simulated second passes through this one chokepoint, the
clock is also where time *attribution* hooks in: an optional
:class:`~repro.obs.attribution.TimeAttributor` observes each movement
after the fact, tagged with the component that consumed it.  The hook
runs after ``_now`` has already been updated and never changes what the
clock returns, so simulated time is bit-identical with attribution on
or off.
"""

from __future__ import annotations

from typing import Optional

from ..errors import SimulationError

__all__ = ["SimClock"]


class SimClock:
    """A monotonic clock measured in simulated seconds.

    The clock only moves forward.  Components hold a shared reference
    and call :meth:`advance` as they consume time, or :meth:`advance_to`
    when synchronising with an event timestamp.  Both accept an optional
    ``component`` label consumed by the attached attributor (if any);
    unlabelled movements inherit the attributor's current scope.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SimulationError(f"clock cannot start at negative time {start}")
        self._now = float(start)
        self._attributor = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def attributor(self):
        """The attached :class:`TimeAttributor`, or ``None``."""
        return self._attributor

    def set_attributor(self, attributor) -> None:
        """Attach (or detach, with ``None``) a time attributor."""
        self._attributor = attributor

    def advance(self, duration: float, component: Optional[str] = None) -> float:
        """Move the clock forward by ``duration`` seconds.

        Returns the new time.  Negative durations are rejected; zero is
        allowed (instantaneous bookkeeping events).
        """
        if duration < 0:
            raise SimulationError(f"cannot advance clock by negative duration {duration}")
        old = self._now
        self._now = old + duration
        if self._attributor is not None:
            self._attributor.record(old, self._now, component)
        return self._now

    def advance_to(self, timestamp: float, component: Optional[str] = None) -> float:
        """Move the clock forward to an absolute ``timestamp``.

        A timestamp in the past is rejected: simulated time is
        monotonic.  Returns the new time.
        """
        if timestamp < self._now:
            raise SimulationError(
                f"cannot move clock backwards from {self._now} to {timestamp}"
            )
        old = self._now
        self._now = float(timestamp)
        if self._attributor is not None:
            self._attributor.record(old, self._now, component)
        return self._now

    def restore(self, timestamp: float) -> None:
        """Set the clock to ``timestamp``, forwards *or backwards*.

        This is the snapshot-restore escape hatch used by
        :meth:`repro.sim.Simulator.restore`: rewinding is the whole
        point of forkable machine state, so the monotonicity guard is
        deliberately bypassed.  No attribution record is emitted — an
        attached attributor's telescoping identity only holds while
        time is contiguous, so restore inside attribution-free search
        loops.
        """
        if timestamp < 0:
            raise SimulationError(f"cannot restore clock to negative time {timestamp}")
        self._now = float(timestamp)

    def reset(self) -> None:
        """Rewind to time zero (only for reusing a clock across runs).

        Any attached attributor is reset too: its records telescope to
        ``end - start`` only while time is contiguous, and a rewind
        breaks that chain.
        """
        self._now = 0.0
        if self._attributor is not None:
            self._attributor.reset()

    def __repr__(self) -> str:
        return f"SimClock(now={self._now!r})"
