"""Simulated monotonic clock.

The whole machine shares one :class:`SimClock`.  Time only moves
forward: synchronous costs (compute, transfers, media latency) call
:meth:`SimClock.advance`, and the event engine calls
:meth:`SimClock.advance_to` when it dequeues the next event.  All
timestamps are floats in simulated seconds since machine construction.
"""

from __future__ import annotations

from ..errors import SimulationError

__all__ = ["SimClock"]


class SimClock:
    """A monotonic clock measured in simulated seconds.

    The clock only moves forward.  Components hold a shared reference
    and call :meth:`advance` as they consume time, or :meth:`advance_to`
    when synchronising with an event timestamp.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SimulationError(f"clock cannot start at negative time {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, duration: float) -> float:
        """Move the clock forward by ``duration`` seconds.

        Returns the new time.  Negative durations are rejected; zero is
        allowed (instantaneous bookkeeping events).
        """
        if duration < 0:
            raise SimulationError(f"cannot advance clock by negative duration {duration}")
        self._now += duration
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to an absolute ``timestamp``.

        A timestamp in the past is rejected: simulated time is
        monotonic.  Returns the new time.
        """
        if timestamp < self._now:
            raise SimulationError(
                f"cannot move clock backwards from {self._now} to {timestamp}"
            )
        self._now = float(timestamp)
        return self._now

    def reset(self) -> None:
        """Rewind to time zero (only for reusing a clock across runs)."""
        self._now = 0.0

    def __repr__(self) -> str:
        return f"SimClock(now={self._now!r})"
