"""Discrete-event simulation substrate.

A minimal but complete event-driven engine: a priority queue of timed
events and a monotonic simulated clock.  All hardware models in
:mod:`repro.hw` and :mod:`repro.storage` advance time through this
engine, so an end-to-end ActivePy run is fully deterministic.
"""

from .clock import SimClock
from .engine import Event, EventQueue, Simulator

__all__ = ["SimClock", "Event", "EventQueue", "Simulator"]
