"""Discrete-event simulation substrate.

A batched, index-based event engine behind a small public surface: a
:class:`Simulator` owning the monotonic :class:`SimClock`, opaque
:class:`EventHandle` objects returned by the scheduling calls, and
cheap copy-on-write :class:`SimSnapshot` state for ``snapshot()`` /
``fork()``.  All hardware models in :mod:`repro.hw` and
:mod:`repro.storage` advance time through this engine, so an
end-to-end ActivePy run is fully deterministic — and bit-identical
whichever engine (``array`` or ``object``) backs it.

The pre-redesign names ``Event`` and ``EventQueue`` remain importable
here behind a warn-once deprecation shim; new code schedules through
:class:`Simulator` and holds :class:`EventHandle` objects.
"""

from .clock import SimClock
from .engine import DEFAULT_ENGINE, SimSnapshot, Simulator
from .handle import EventHandle

__all__ = [
    "DEFAULT_ENGINE",
    "Event",
    "EventHandle",
    "EventQueue",
    "SimClock",
    "SimSnapshot",
    "Simulator",
]

#: Deprecated names still importable from this package, with the
#: replacement named in the warning.
_DEPRECATED = {
    "Event": "hold the EventHandle returned by Simulator.schedule_at/schedule_after",
    "EventQueue": "schedule through Simulator (events are stored engine-side)",
}


def __getattr__(name: str):
    if name in _DEPRECATED:
        from .._deprecations import warn_once
        from . import engine as _engine

        warn_once(
            f"sim:{name}",
            f"repro.sim.{name} is deprecated and will be removed; "
            f"{_DEPRECATED[name]}",
        )
        return getattr(_engine, name)
    raise AttributeError(f"module 'repro.sim' has no attribute {name!r}")


def __dir__():
    return sorted(__all__)
