"""The simulator loop and its two interchangeable event engines.

:class:`Simulator` owns the shared :class:`~repro.sim.clock.SimClock`
and an *event engine*, and runs scheduled callbacks in time order.
Hardware models use it for asynchronous behaviour — background garbage
collection, CSE availability changes, congestion onset — while
straight-line execution cost is accounted synchronously via
``clock.advance``.

Two engines implement the same contract and fire events in bit-identical
order (time, then scheduling sequence, with cancels honoured at any
point):

``array`` (the default)
    The struct-of-arrays engine in :mod:`repro.sim.array_engine`:
    NumPy timestamp column, batched due-event drains, O(1) live
    counts, copy-on-write :meth:`Simulator.snapshot` / ``fork``.

``object``
    The original heap-of-:class:`Event` engine, kept as the reference
    implementation and for the dual-engine equivalence harness.

Select with ``Simulator(engine="array"|"object")`` or the
``REPRO_SIM_ENGINE`` environment variable (the keyword wins).

Scheduling returns an opaque :class:`~repro.sim.handle.EventHandle`;
the mutable :class:`Event` dataclass and :class:`EventQueue` remain
only as the object engine's internals and as deprecated imports (shimmed
with a warn-once deprecation via ``repro.sim``).

When the simulator carries an enabled :class:`~repro.obs.Observability`
handle it counts scheduled and fired events (``sim.events_scheduled``,
``sim.events_fired``); metric recording never advances the clock, so
results are identical with observability on or off.
"""

from __future__ import annotations

import heapq
import math
import os
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union

import numpy as np

from ..errors import SimulationError
from ..obs import Observability
from .array_engine import _ArrayEngine, _ArrayState
from .clock import SimClock
from .handle import EventHandle

__all__ = [
    "DEFAULT_ENGINE",
    "Event",
    "EventHandle",
    "EventQueue",
    "SimSnapshot",
    "Simulator",
]

#: Engine used when neither the ``engine=`` keyword nor the
#: ``REPRO_SIM_ENGINE`` environment variable picks one.
DEFAULT_ENGINE = "array"

_ENGINE_NAMES = ("array", "object")


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback (deprecated; the object engine's internal).

    Events order by time, then by a monotonically increasing sequence
    number so same-time events fire in scheduling order.  New code
    should schedule through :class:`Simulator` and hold the returned
    :class:`EventHandle` instead of touching this class.
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)
    #: Owning queue while the event is pending; cleared once popped so
    #: a late cancel() cannot decrement the live count twice.
    queue: Optional["EventQueue"] = field(compare=False, repr=False, default=None)

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.queue is not None:
            self.queue._on_cancel()
            self.queue = None


class EventQueue:
    """A stable min-heap of :class:`Event` objects (deprecated).

    Tracks the live (non-cancelled, not yet popped) count incrementally
    so ``len()`` is O(1) instead of a scan over the heap.  Kept as the
    object engine's storage and for legacy imports; new code should use
    :class:`Simulator` directly.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._next_seq = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def _on_cancel(self) -> None:
        self._live -= 1

    def push(self, time: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` at absolute ``time`` and return the event."""
        if time < 0:
            raise SimulationError(f"cannot schedule event at negative time {time}")
        event = Event(time=time, seq=self._next_seq, action=action, label=label)
        self._next_seq += 1
        event.queue = self
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or None if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                self._live -= 1
                event.queue = None
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Timestamp of the earliest live event, or None if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None


class _ObjectEngine:
    """Adapter putting the legacy heapq engine behind the engine contract."""

    name = "object"

    __slots__ = ("queue", "fired")

    def __init__(self) -> None:
        self.queue = EventQueue()
        self.fired = 0

    @property
    def live(self) -> int:
        return len(self.queue)

    # --- scheduling -------------------------------------------------------

    def push(self, time: float, action: Callable[[], None], label: str = "") -> EventHandle:
        return EventHandle(self, self.queue.push(time, action, label))

    def push_batch(
        self,
        times: np.ndarray,
        action: Union[Callable[[], None], Sequence[Callable[[], None]]],
        labels: Union[str, Sequence[str]] = "",
    ) -> None:
        push = self.queue.push
        single_action = callable(action)
        single_label = isinstance(labels, str)
        for position, time in enumerate(times.tolist()):
            push(
                time,
                action if single_action else action[position],
                labels if single_label else labels[position],
            )

    # --- handle protocol --------------------------------------------------

    def cancel_key(self, event: Event) -> None:
        if event.queue is None and not event.cancelled:
            return  # already popped and fired: cancel is a no-op
        event.cancel()

    def handle_time(self, event: Event) -> float:
        return event.time

    def handle_seq(self, event: Event) -> int:
        return event.seq

    def handle_label(self, event: Event) -> str:
        return event.label

    def handle_cancelled(self, event: Event) -> bool:
        return event.cancelled

    # --- firing -----------------------------------------------------------

    def drain(
        self,
        deadline: float,
        clock: Optional[SimClock] = None,
        counter=None,
        limit: Optional[int] = None,
    ) -> int:
        """Pop-and-fire every live event due at or before ``deadline``."""
        queue = self.queue
        fired_total = 0
        while limit is None or fired_total < limit:
            next_time = queue.peek_time()
            if next_time is None or next_time > deadline:
                break
            event = queue.pop()
            assert event is not None
            if clock is not None:
                clock.advance_to(max(event.time, clock.now))
            event.action()
            self.fired += 1
            fired_total += 1
            if counter is not None:
                counter.inc()
        return fired_total

    # --- snapshot / restore ----------------------------------------------

    def capture(self):
        # Events are mutable (the cancelled flag), so an eager copy is
        # required; the array engine's copy-on-write is the cheap path.
        heap = [
            Event(time=e.time, seq=e.seq, action=e.action,
                  label=e.label, cancelled=e.cancelled)
            for e in self.queue._heap
        ]
        return (heap, self.queue._next_seq, len(self.queue), self.fired)

    def restore(self, state) -> None:
        heap, next_seq, live, fired = state
        queue = EventQueue()
        # Copy again: the snapshot must survive this branch's mutations
        # and stay restorable.  The copied list is already heap-ordered.
        queue._heap = [
            Event(time=e.time, seq=e.seq, action=e.action,
                  label=e.label, cancelled=e.cancelled)
            for e in heap
        ]
        for event in queue._heap:
            if not event.cancelled:
                event.queue = queue
        queue._next_seq = next_seq
        queue._live = live
        self.queue = queue
        self.fired = fired


@dataclass(frozen=True)
class SimSnapshot:
    """Frozen engine + clock state captured by :meth:`Simulator.snapshot`.

    Opaque: the payload layout is engine-private.  A snapshot can be
    restored any number of times (:meth:`Simulator.restore`) and only
    into a simulator running the same engine kind.
    """

    engine: str
    clock_now: float
    state: object = field(repr=False)

    @property
    def pending_events(self) -> int:
        """Live events captured in the snapshot (diagnostics)."""
        if isinstance(self.state, _ArrayState):
            return self.state.live
        return self.state[2]


class Simulator:
    """Owns the clock and an event engine; runs events in time order.

    Construction is keyword-only::

        sim = Simulator(clock=..., obs=..., engine="array")

    ``engine`` defaults to the ``REPRO_SIM_ENGINE`` environment
    variable, then to :data:`DEFAULT_ENGINE`.
    """

    def __init__(
        self,
        *,
        clock: Optional[SimClock] = None,
        obs: Optional[Observability] = None,
        engine: Optional[str] = None,
    ) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.obs = obs if obs is not None else Observability.disabled()
        if engine is None:
            engine = os.environ.get("REPRO_SIM_ENGINE") or DEFAULT_ENGINE
        if engine not in _ENGINE_NAMES:
            raise SimulationError(
                f"unknown sim engine {engine!r}; expected one of {_ENGINE_NAMES}"
            )
        self._engine_name = engine
        self._engine = _ArrayEngine() if engine == "array" else _ObjectEngine()

    # --- introspection ------------------------------------------------------

    @property
    def engine_name(self) -> str:
        """Which engine backs this simulator: ``"array"`` or ``"object"``."""
        return self._engine_name

    @property
    def now(self) -> float:
        return self.clock.now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (for tests/diagnostics)."""
        return self._engine.fired

    @property
    def pending_events(self) -> int:
        """Live (scheduled, not fired, not cancelled) events — O(1)."""
        return self._engine.live

    def _fired_counter(self):
        """The obs events-fired counter, or None when obs is disabled."""
        obs = self.obs
        return obs.metrics.counter("sim.events_fired") if obs.enabled else None

    # --- scheduling ---------------------------------------------------------

    def schedule_at(
        self, time: float, action: Callable[[], None], label: str = ""
    ) -> EventHandle:
        """Schedule ``action`` at an absolute simulated time."""
        if time < self.clock.now:
            raise SimulationError(
                f"cannot schedule event in the past ({time} < {self.clock.now})"
            )
        if self.obs.enabled:
            self.obs.metrics.counter("sim.events_scheduled").inc()
        return self._engine.push(time, action, label)

    def schedule_after(
        self, delay: float, action: Callable[[], None], label: str = ""
    ) -> EventHandle:
        """Schedule ``action`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule event with negative delay {delay}")
        if self.obs.enabled:
            self.obs.metrics.counter("sim.events_scheduled").inc()
        return self._engine.push(self.clock.now + delay, action, label)

    def schedule_batch(
        self,
        times,
        action: Union[Callable[[], None], Sequence[Callable[[], None]]],
        labels: Union[str, Sequence[str]] = "",
    ) -> int:
        """Bulk fire-and-forget scheduling; returns the count scheduled.

        ``times`` is any 1-D sequence of absolute timestamps; ``action``
        is one callable shared by every event or a parallel sequence of
        callables (likewise ``labels``).  No handles are returned — use
        :meth:`schedule_at` for events that may need cancelling.  On the
        array engine the timestamps land in one vectorised write.
        """
        column = np.ascontiguousarray(times, dtype=np.float64)
        if column.ndim != 1:
            raise SimulationError(
                f"schedule_batch needs a 1-D sequence of times, got shape {column.shape}"
            )
        if column.size == 0:
            return 0
        earliest = float(column.min())
        if earliest < self.clock.now:
            raise SimulationError(
                f"cannot schedule event in the past ({earliest} < {self.clock.now})"
            )
        if self.obs.enabled:
            self.obs.metrics.counter("sim.events_scheduled").inc(column.size)
        self._engine.push_batch(column, action, labels)
        return int(column.size)

    # --- running ------------------------------------------------------------

    def fire_due_events(self) -> int:
        """Run every event due at or before the current time.

        Used by synchronous execution paths after advancing the clock:
        the executor consumes compute time, then lets any background
        events (availability changes, GC) that became due take effect.
        Returns the number of events fired.
        """
        counter = self._fired_counter()
        fired = 0
        while True:
            # Re-read the clock per pass: a fired callback may advance
            # it, making further events due.
            drained = self._engine.drain(self.clock.now, clock=None, counter=counter)
            if drained == 0:
                return fired
            fired += drained

    def run_until(self, deadline: float) -> None:
        """Advance to ``deadline``, firing all events on the way."""
        if deadline < self.clock.now:
            raise SimulationError(
                f"deadline {deadline} is before current time {self.clock.now}"
            )
        counter = self._fired_counter()
        while self._engine.drain(deadline, clock=self.clock, counter=counter):
            pass
        self.clock.advance_to(deadline)

    def run_all(self, max_events: int = 1_000_000) -> None:
        """Fire every scheduled event in order until the queue drains.

        Raises :class:`~repro.errors.SimulationError` only when events
        remain *beyond* the budget — draining exactly ``max_events``
        events is a successful run.
        """
        counter = self._fired_counter()
        remaining = max_events
        while remaining > 0:
            drained = self._engine.drain(
                math.inf, clock=self.clock, counter=counter, limit=remaining
            )
            if drained == 0:
                return
            remaining -= drained
        if self._engine.live > 0:
            raise SimulationError(
                f"run_all exceeded {max_events} events; likely a scheduling loop"
            )

    # --- snapshot / fork ----------------------------------------------------

    def snapshot(self) -> SimSnapshot:
        """Capture engine + clock state, cheaply (copy-on-write).

        The snapshot pins pending events (callbacks included, by
        reference), the fired count, and the clock reading.  Callbacks
        close over live model objects; a snapshot freezes *scheduling*
        state, not the state those callbacks mutate.
        """
        return SimSnapshot(
            engine=self._engine_name,
            clock_now=self.clock.now,
            state=self._engine.capture(),
        )

    def restore(self, snapshot: SimSnapshot) -> None:
        """Rewind this simulator to a snapshot (clock may move backwards).

        Handles obtained after the snapshot was taken must not be used
        once it is restored.  An attached time attributor is *not*
        rewound — restore inside attribution-free search loops.
        """
        if snapshot.engine != self._engine_name:
            raise SimulationError(
                f"snapshot was taken on the {snapshot.engine!r} engine; "
                f"this simulator runs {self._engine_name!r}"
            )
        self._engine.restore(snapshot.state)
        self.clock.restore(snapshot.clock_now)

    def fork(self, *, obs: Optional[Observability] = None) -> "Simulator":
        """A new independent simulator continuing from this one's state.

        The fork gets its own clock (at the same reading, without the
        parent's attributor) and its own engine sharing the pending
        event set copy-on-write; callbacks are shared by reference, so
        forked branches exploring different futures should reschedule
        against their own model state.  ``obs`` defaults to sharing the
        parent's handle — pass ``Observability.disabled()`` to keep
        search branches out of the parent's metrics.
        """
        branch = Simulator(
            clock=SimClock(),
            obs=obs if obs is not None else self.obs,
            engine=self._engine_name,
        )
        branch.restore(self.snapshot())
        return branch
