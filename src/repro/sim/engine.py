"""Event queue and simulator loop.

The engine is deliberately small: an :class:`Event` couples a timestamp
with a callback, the :class:`EventQueue` orders them (stably, by
insertion order within a timestamp), and :class:`Simulator` pops events
and advances the shared :class:`~repro.sim.clock.SimClock`.

Hardware models use this for *asynchronous* behaviour — background
garbage collection, CSE availability changes, congestion onset — while
straight-line execution cost is accounted synchronously via
``clock.advance``.

When the simulator carries an enabled :class:`~repro.obs.Observability`
handle it counts scheduled and fired events (``sim.events_scheduled``,
``sim.events_fired``); metric recording never advances the clock, so
results are identical with observability on or off.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import SimulationError
from ..obs import Observability
from .clock import SimClock

__all__ = ["Event", "EventQueue", "Simulator"]


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback.

    Events order by time, then by a monotonically increasing sequence
    number so same-time events fire in scheduling order.
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)
    #: Owning queue while the event is pending; cleared once popped so
    #: a late cancel() cannot decrement the live count twice.
    queue: Optional["EventQueue"] = field(compare=False, repr=False, default=None)

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.queue is not None:
            self.queue._on_cancel()
            self.queue = None


class EventQueue:
    """A stable min-heap of :class:`Event` objects.

    Tracks the live (non-cancelled, not yet popped) count incrementally
    so ``len()`` is O(1) instead of a scan over the heap.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def _on_cancel(self) -> None:
        self._live -= 1

    def push(self, time: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` at absolute ``time`` and return the event."""
        if time < 0:
            raise SimulationError(f"cannot schedule event at negative time {time}")
        event = Event(time=time, seq=next(self._counter), action=action, label=label)
        event.queue = self
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or None if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                self._live -= 1
                event.queue = None
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Timestamp of the earliest live event, or None if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None


class Simulator:
    """Owns the clock and the event queue; runs events in time order."""

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.events = EventQueue()
        self.obs = obs if obs is not None else Observability.disabled()
        self._fired = 0

    def _count_fired(self) -> None:
        self._fired += 1
        if self.obs.enabled:
            self.obs.metrics.counter("sim.events_fired").inc()

    @property
    def now(self) -> float:
        return self.clock.now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (for tests/diagnostics)."""
        return self._fired

    def schedule_at(self, time: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` at an absolute simulated time."""
        if time < self.clock.now:
            raise SimulationError(
                f"cannot schedule event in the past ({time} < {self.clock.now})"
            )
        if self.obs.enabled:
            self.obs.metrics.counter("sim.events_scheduled").inc()
        return self.events.push(time, action, label)

    def schedule_after(self, delay: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule event with negative delay {delay}")
        if self.obs.enabled:
            self.obs.metrics.counter("sim.events_scheduled").inc()
        return self.events.push(self.clock.now + delay, action, label)

    def fire_due_events(self) -> int:
        """Run every event due at or before the current time.

        Used by synchronous execution paths after advancing the clock:
        the executor consumes compute time, then lets any background
        events (availability changes, GC) that became due take effect.
        Returns the number of events fired.
        """
        fired = 0
        while True:
            next_time = self.events.peek_time()
            if next_time is None or next_time > self.clock.now:
                return fired
            event = self.events.pop()
            assert event is not None
            event.action()
            self._count_fired()
            fired += 1

    def run_until(self, deadline: float) -> None:
        """Advance to ``deadline``, firing all events on the way."""
        if deadline < self.clock.now:
            raise SimulationError(
                f"deadline {deadline} is before current time {self.clock.now}"
            )
        while True:
            next_time = self.events.peek_time()
            if next_time is None or next_time > deadline:
                break
            event = self.events.pop()
            assert event is not None
            self.clock.advance_to(max(event.time, self.clock.now))
            event.action()
            self._count_fired()
        self.clock.advance_to(deadline)

    def run_all(self, max_events: int = 1_000_000) -> None:
        """Fire every scheduled event in order until the queue drains."""
        for _ in range(max_events):
            event = self.events.pop()
            if event is None:
                return
            self.clock.advance_to(max(event.time, self.clock.now))
            event.action()
            self._count_fired()
        raise SimulationError(f"run_all exceeded {max_events} events; likely a scheduling loop")
