"""Struct-of-arrays event engine: the fast default behind ``Simulator``.

Instead of one heap-ordered ``Event`` object per scheduled callback,
this engine stores events column-wise — a NumPy ``float64`` array of
timestamps, a ``bytearray`` of per-event status codes, and parallel
Python lists of callbacks and labels.  The slot index doubles as the
event's sequence number (slots are append-only and never reused within
an engine), so the ``(time, seq)`` total order the object engine gets
from its heap falls out of a single stable ``argsort`` over the due
window here.

Firing is *batched*: one vectorised selection finds every pending event
due at or before the deadline, one stable sort puts the batch in
``(time, seq)`` order, and a tight loop fires it — no per-event heap
maintenance, no ``Event.__lt__`` dispatch.  Callbacks that schedule or
cancel mid-drain are absorbed exactly as the object engine absorbs
them: cancellations are caught by the per-slot status check, and a
newly scheduled event that would precede the rest of the batch forces a
re-selection (see ``drain``), so firing order is bit-identical to the
heapq reference in every case, ties and cancels included.

Snapshots are copy-on-write: :meth:`_ArrayEngine.capture` hands out
references to the live columns and flips a flag; the engine copies the
columns lazily on its next mutation, so taking a snapshot is O(1) and
forking costs one array copy only when both branches keep running.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from .handle import EventHandle

__all__ = ["_ArrayEngine", "_ArrayState"]

#: Per-slot status codes (stored in the ``bytearray`` column).
_PENDING, _FIRED, _CANCELLED = 0, 1, 2

_INITIAL_CAPACITY = 64


class _ArrayState:
    """Snapshot payload: shared references to the engine's columns.

    Immutable by convention — the engine copy-on-writes before mutating
    any column a live snapshot still references, so a state can be
    restored any number of times.
    """

    __slots__ = (
        "times", "status", "actions", "labels",
        "size", "live", "next_due", "fired",
    )

    def __init__(self, times, status, actions, labels, size, live, next_due, fired):
        self.times = times
        self.status = status
        self.actions = actions
        self.labels = labels
        self.size = size
        self.live = live
        self.next_due = next_due
        self.fired = fired


class _ArrayEngine:
    """The struct-of-arrays engine (see module docstring)."""

    name = "array"

    __slots__ = (
        "_times", "_status", "_actions", "_labels",
        "_size", "_live", "_next_due", "fired", "_cow",
    )

    def __init__(self) -> None:
        self._times = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self._status = bytearray(_INITIAL_CAPACITY)
        self._actions: List[Optional[Callable[[], None]]] = []
        self._labels: List[str] = []
        #: Number of slots ever used; also the next event's seq.
        self._size = 0
        #: Pending (scheduled, neither fired nor cancelled) count — O(1).
        self._live = 0
        #: Lower bound on the earliest pending timestamp.  Never stale
        #: high: pushes lower it eagerly, and it is recomputed exactly
        #: whenever a drain's selection comes back empty.
        self._next_due = math.inf
        #: Events fired over the engine's lifetime.
        self.fired = 0
        #: True while a snapshot shares the columns; the next mutation
        #: copies them first (copy-on-write).
        self._cow = False

    # --- storage ----------------------------------------------------------

    @property
    def live(self) -> int:
        return self._live

    def _materialize(self) -> None:
        """Replace shared columns with private copies (post-snapshot)."""
        self._times = self._times.copy()
        self._status = bytearray(self._status)
        self._actions = list(self._actions)
        self._labels = list(self._labels)
        self._cow = False

    def _grow(self, need: int) -> None:
        capacity = len(self._times)
        while capacity < need:
            capacity *= 2
        fresh = np.empty(capacity, dtype=np.float64)
        fresh[: self._size] = self._times[: self._size]
        self._times = fresh
        self._status.extend(bytes(capacity - len(self._status)))

    # --- scheduling -------------------------------------------------------

    def push(self, time: float, action: Callable[[], None], label: str = "") -> EventHandle:
        if self._cow:
            self._materialize()
        index = self._size
        if index >= len(self._times):
            self._grow(index + 1)
        self._times[index] = time
        self._actions.append(action)
        self._labels.append(label)
        self._size = index + 1
        self._live += 1
        if time < self._next_due:
            self._next_due = time
        return EventHandle(self, index)

    def push_batch(
        self,
        times: np.ndarray,
        action: Union[Callable[[], None], Sequence[Callable[[], None]]],
        labels: Union[str, Sequence[str]] = "",
    ) -> None:
        """Append a whole column of events in one vectorised write."""
        if self._cow:
            self._materialize()
        count = int(times.size)
        lo = self._size
        hi = lo + count
        if hi > len(self._times):
            self._grow(hi)
        self._times[lo:hi] = times
        if callable(action):
            self._actions.extend([action] * count)
        else:
            self._actions.extend(action)
        if isinstance(labels, str):
            self._labels.extend([labels] * count)
        else:
            self._labels.extend(labels)
        self._size = hi
        self._live += count
        earliest = float(times.min())
        if earliest < self._next_due:
            self._next_due = earliest

    # --- handle protocol --------------------------------------------------

    def cancel_key(self, index: int) -> None:
        if self._status[index] != _PENDING:
            return  # already fired or already cancelled: idempotent
        if self._cow:
            self._materialize()
        self._status[index] = _CANCELLED
        self._actions[index] = None
        self._live -= 1

    def handle_time(self, index: int) -> float:
        return float(self._times[index])

    def handle_seq(self, index: int) -> int:
        return index

    def handle_label(self, index: int) -> str:
        return self._labels[index]

    def handle_cancelled(self, index: int) -> bool:
        return self._status[index] == _CANCELLED

    # --- firing -----------------------------------------------------------

    def drain(
        self,
        deadline: float,
        clock=None,
        counter=None,
        limit: Optional[int] = None,
    ) -> int:
        """Fire every pending event with ``time <= deadline``, in order.

        ``clock`` non-None advances it to each event's timestamp before
        the callback runs (the ``run_until``/``run_all`` contract);
        None leaves it alone (``fire_due_events``).  ``counter`` is the
        obs events-fired counter or None; ``limit`` caps how many
        events fire.  Returns the number fired.
        """
        if self._cow:
            self._materialize()
        fired_total = 0
        advance = clock is not None
        while True:
            if self._live == 0 or self._next_due > deadline:
                return fired_total
            if limit is not None and fired_total >= limit:
                return fired_total
            size = self._size
            times = self._times[:size]
            status = np.frombuffer(self._status, dtype=np.uint8, count=size)
            pending = status == _PENDING
            if deadline == math.inf:
                due = pending
            else:
                due = pending & (times <= deadline)
            indices = np.flatnonzero(due)
            if indices.size == 0:
                live_times = times[pending]
                self._next_due = float(live_times.min()) if live_times.size else math.inf
                return fired_total
            # Stable sort by time over ascending slot indices == exact
            # (time, seq) order, same-time ties in scheduling order.
            order = indices[np.argsort(times[indices], kind="stable")]
            order_list = order.tolist()
            time_list = times[order].tolist()
            # Release the frombuffer view before callbacks run: a held
            # export would make a growth-triggering push raise
            # BufferError when it resizes the status column.
            del status, pending, due
            batch = len(order_list)
            statuses = self._status
            actions = self._actions
            position = 0
            while position < batch:
                index = order_list[position]
                event_time = time_list[position]
                position += 1
                if statuses[index] != _PENDING:
                    continue  # cancelled by an earlier callback
                statuses[index] = _FIRED
                action = actions[index]
                actions[index] = None
                self._live -= 1
                if advance:
                    now = clock.now
                    clock.advance_to(event_time if event_time > now else now)
                action()
                self.fired += 1
                fired_total += 1
                if counter is not None:
                    counter.inc()
                if limit is not None and fired_total >= limit:
                    return fired_total
                if self._actions is not actions:
                    # The callback snapshotted this engine mid-drain and
                    # a later mutation copy-on-wrote the columns;
                    # re-acquire so we keep mutating the live ones.
                    statuses = self._status
                    actions = self._actions
                if self._size != size:
                    size = self._size
                    if advance and position < batch and self._next_due < time_list[position]:
                        # The callback scheduled an event that must fire
                        # before the rest of this batch: fall back to the
                        # outer loop to re-select in (time, seq) order.
                        break
            # Loop: absorbs mid-drain arrivals, then the empty selection
            # recomputes _next_due exactly and returns.

    # --- snapshot / restore ----------------------------------------------

    def capture(self) -> _ArrayState:
        """O(1) snapshot: share the columns, copy lazily on mutation."""
        self._cow = True
        return _ArrayState(
            self._times, self._status, self._actions, self._labels,
            self._size, self._live, self._next_due, self.fired,
        )

    def restore(self, state: _ArrayState) -> None:
        self._times = state.times
        self._status = state.status
        self._actions = state.actions
        self._labels = state.labels
        self._size = state.size
        self._live = state.live
        self._next_due = state.next_due
        self.fired = state.fired
        # The columns are shared with the snapshot (which may be
        # restored again): copy before the next mutation.
        self._cow = True
