"""The opaque handle returned by ``Simulator.schedule_at``/``schedule_after``.

An :class:`EventHandle` is the only thing a caller may keep from a
scheduling call: it exposes the event's timestamp, sequence number and
label read-only, plus :meth:`EventHandle.cancel`.  The handle never
reveals which engine (array or object) backs the simulator, so models
written against it run unchanged under either.

Cancellation is idempotent and safe at any point in the event's life:
cancelling twice, or cancelling after the event already fired, is a
no-op.  Handles do not survive :meth:`Simulator.restore` — cancelling a
handle obtained before a snapshot was restored is undefined.
"""

from __future__ import annotations

__all__ = ["EventHandle"]


class EventHandle:
    """Opaque, cancellable reference to one scheduled event.

    Engines implement the four-accessor protocol this class delegates
    to (``cancel_key`` / ``handle_time`` / ``handle_seq`` /
    ``handle_label`` / ``handle_cancelled``); the handle itself carries
    only the engine reference and an engine-private key.
    """

    __slots__ = ("_engine", "_key")

    def __init__(self, engine, key) -> None:
        self._engine = engine
        self._key = key

    def cancel(self) -> None:
        """Cancel the event if it is still pending (idempotent)."""
        self._engine.cancel_key(self._key)

    @property
    def time(self) -> float:
        """Absolute simulated time the event fires (or would have)."""
        return self._engine.handle_time(self._key)

    @property
    def seq(self) -> int:
        """Scheduling order; ties at one timestamp fire in seq order."""
        return self._engine.handle_seq(self._key)

    @property
    def label(self) -> str:
        """The diagnostic label passed at scheduling time."""
        return self._engine.handle_label(self._key)

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` took effect (not set by firing)."""
        return self._engine.handle_cancelled(self._key)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "scheduled"
        return (
            f"EventHandle(time={self.time!r}, seq={self.seq}, "
            f"label={self.label!r}, {state})"
        )
