"""Command-line interface.

::

    python -m repro list                       # the workload suite
    python -m repro run tpch_q6 [--trace]      # one workload end to end
    python -m repro metrics run tpch_q6        # ... with the metric report
    python -m repro trace run tpch_q6          # ... exporting a Chrome trace
    python -m repro table1                     # regenerate Table I
    python -m repro fig2 | fig4 | fig5         # regenerate a figure
    python -m repro ladder | prediction        # the §V results
    python -m repro chaos [--runs N]           # randomized fault campaign
    python -m repro chaos --workers 4          # ... across worker processes
    python -m repro chaos --sdc                # ... with silent-corruption faults
    python -m repro chaos --workload W --seed S  # replay one seeded run
    python -m repro chaos --fleet [--runs N]   # rack-scale fleet fault campaign
    python -m repro fleet run [--devices N]    # one seeded fleet run
    python -m repro fleet run --timeline       # ... with the flight recorder
    python -m repro fleet run --trace-out t.json  # ... exporting a fleet trace
    python -m repro obs dashboard              # fleet sparkline dashboard
    python -m repro faults list                # catalogue of injectable faults
    python -m repro explain run tpch_q6        # plan vs. reality + critical path
    python -m repro plan search pagerank       # branch-and-bound vs greedy
    python -m repro run pagerank --plan-mode search  # run with the search plan
    python -m repro bench                      # wall-clock perf-layer benchmark
    python -m repro perf check                 # gate BENCH_*.json vs baselines
    python -m repro perf snapshot              # refresh committed perf baselines
    python -m repro ... --json out.json        # archive the raw result

Every command runs on the simulated platform; ``--scale`` shrinks the
input population for quick smoke runs (ratios then deviate from the
calibrated paper-scale ones).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .analysis import export
from .analysis.experiments import (
    run_fig2,
    run_fig4,
    run_fig5,
    run_overhead_ladder,
    run_prediction_accuracy,
    run_table1,
)
from .analysis.report import ascii_bar_chart, format_table
from .baselines import run_c_baseline
from .obs import Observability
from .runtime.activepy import ActivePy, RunOptions
from .units import format_bytes, format_seconds
from .workloads import get_workload, workload_names


def _cmd_list(args) -> int:
    rows = []
    for name in workload_names():
        workload = get_workload(name, scale=2**-7)
        rows.append([
            name,
            format_bytes(workload.table1_bytes) if workload.table1_bytes else "-",
            len(workload.program),
            workload.description,
        ])
    print(format_table(["workload", "Table I size", "lines", "description"], rows))
    return 0


def _cmd_run(args) -> int:
    from .hw.topology import build_machine

    workload = get_workload(args.workload, scale=args.scale)
    print(f"running {workload.name} at scale {args.scale} "
          f"({format_bytes(workload.raw_bytes)})")
    baseline = run_c_baseline(workload.program, workload.dataset)
    machine = build_machine()
    triggers = [(0.5, args.stress)] if args.stress is not None else []
    fault_plan = None
    if args.fault_count:
        from .config import DEFAULT_CONFIG
        from .faults import FaultPlan

        seed = args.fault_seed if args.fault_seed is not None else DEFAULT_CONFIG.fault_seed
        # The C baseline's runtime bounds the horizon faults land in.
        fault_plan = FaultPlan.random(
            seed=seed, horizon_s=baseline.total_seconds, count=args.fault_count,
        )
    report = ActivePy(plan_mode=args.plan_mode).run(
        workload.program, workload.dataset, machine=machine,
        options=RunOptions(
            trace=args.trace,
            progress_triggers=tuple(triggers),
            fault_plan=fault_plan,
        ),
    )
    print(f"C baseline : {format_seconds(baseline.total_seconds)}")
    print(f"ActivePy   : {format_seconds(report.total_seconds)} "
          f"({baseline.total_seconds / report.total_seconds:.2f}x)")
    print("plan       : " + ", ".join(
        f"{statement.name}->{where}"
        for statement, where in zip(workload.program, report.plan.assignments)
    ) + f" (origin: {report.plan.origin}, "
        f"projected speedup {report.plan.projected_speedup:.2f}x)")
    if report.search is not None and report.search.beat_greedy:
        moves = ", ".join(
            f"{name}: {a}->{b}" for _, name, a, b in report.search.changed_lines()
        )
        print(f"search     : beat greedy by "
              f"{100 * report.search.improvement_fraction:.1f}% ({moves})")
    if report.result.migrated:
        for event in report.result.migrations:
            print(f"migration  : {event.line_name} at "
                  f"{event.sim_time:.2f}s ({event.reason})")
    if fault_plan is not None:
        print(f"faults     : {len(fault_plan)} armed (seed {fault_plan.seed}), "
              f"degraded={report.result.degraded}, "
              f"chunk replays={report.result.chunk_replays}")
        for event in report.result.fault_events:
            print(f"  {event.render()}")
    if args.trace and report.timeline is not None:
        from .analysis.utilization import utilization_report

        print()
        print(report.timeline.render())
        print()
        print(utilization_report(
            machine, total_seconds=report.total_seconds,
        ).render())
    if args.json:
        export.dump(report, args.json)
        print(f"wrote {args.json}")
    return 0


def _cmd_plan_search(args) -> int:
    """Branch-and-bound plan search, diffed against greedy Algorithm 1."""
    import json as json_module

    from .config import DEFAULT_CONFIG
    from .runtime.estimator import build_estimates
    from .runtime.planner import assign_csd_code
    from .runtime.plansearch import SearchOptions, search_plan
    from .runtime.sampling import SamplingPhase

    workload = get_workload(args.workload, scale=args.scale)
    print(f"planning {workload.name} at scale {args.scale} "
          f"({format_bytes(workload.raw_bytes)})")
    sampling = SamplingPhase(DEFAULT_CONFIG).run(workload.program,
                                                 workload.dataset)
    estimates = build_estimates(sampling, workload.n_records, DEFAULT_CONFIG)
    greedy = assign_csd_code(estimates, DEFAULT_CONFIG)
    report = search_plan(
        workload.program, workload.dataset, estimates, DEFAULT_CONFIG,
        options=SearchOptions(beam_width=args.beam_width,
                              workers=args.workers),
        greedy=greedy,
    )
    metrics = report.metrics

    def plan_line(label, assignments, makespan):
        moves = ", ".join(
            f"{statement.name}->{where}"
            for statement, where in zip(workload.program, assignments)
        )
        print(f"{label}: {moves}  ({format_seconds(makespan)} speculative)")

    plan_line("greedy ", report.greedy_plan.assignments,
              report.greedy_makespan_s)
    plan_line("search ", report.plan.assignments, report.makespan_s)
    if report.beat_greedy:
        moves = ", ".join(
            f"{name}: {a}->{b}" for _, name, a, b in report.changed_lines()
        )
        print(f"verdict: search beat greedy by "
              f"{100 * report.improvement_fraction:.1f}% ({moves})")
    else:
        print("verdict: greedy's plan is optimal (search confirmed it)")
    print(f"search  : {metrics.nodes_expanded} nodes expanded, "
          f"{metrics.nodes_pruned} pruned, {metrics.memo_hits} memo hits, "
          f"{metrics.steps_simulated} speculative steps, "
          f"{metrics.wall_seconds:.3f}s wall")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json_module.dump(report.to_jsonable(), handle, indent=2)
        print(f"wrote {args.json}")
    return 0


def _run_observed(workload_name: str, scale: float, obs: Observability):
    """Run one workload with a caller-supplied observability handle."""
    workload = get_workload(workload_name, scale=scale)
    print(f"running {workload.name} at scale {scale} "
          f"({format_bytes(workload.raw_bytes)})")
    report = ActivePy().run(
        workload.program, workload.dataset, options=RunOptions(obs=obs),
    )
    print(f"ActivePy   : {format_seconds(report.total_seconds)}")
    return report


def _cmd_metrics(args) -> int:
    obs = Observability()
    _run_observed(args.workload, args.scale, obs)
    print()
    print(obs.metrics.render())
    if args.json:
        export.dump(obs.snapshot(), args.json)
        print(f"wrote {args.json}")
    return 0


def _cmd_trace(args) -> int:
    from .obs import validate_chrome_trace, write_chrome_trace

    obs = Observability.with_tracing()
    _run_observed(args.workload, args.scale, obs)
    out = args.out if args.out else f"{args.workload}_trace.json"
    trace = write_chrome_trace(obs.tracer.spans, out)
    problems = validate_chrome_trace(trace)
    if problems:
        for problem in problems:
            print(f"repro trace: invalid trace: {problem}", file=sys.stderr)
        return 1
    print(f"wrote {out} ({len(obs.tracer.spans)} span(s)) — "
          f"open in chrome://tracing or https://ui.perfetto.dev")
    return 0


def _print_and_maybe_export(result, text: str, json_path: Optional[str]) -> int:
    print(text)
    if json_path:
        export.dump(result, json_path)
        print(f"\nwrote {json_path}")
    return 0


def _cmd_table1(args) -> int:
    rows = run_table1()
    text = format_table(
        ["application", "data size", "regions"],
        [[r.name, format_bytes(r.data_bytes), r.sese_regions] for r in rows],
    )
    return _print_and_maybe_export(rows, text, args.json)


def _cmd_fig2(args) -> int:
    result = run_fig2()
    lines = ["FIGURE 2 — static C ISP speedup vs CSE availability"]
    for name, series in result.series.items():
        lines.append(f"\n{name}:")
        lines.append(ascii_bar_chart(
            [f"{a:.0%}" for a in result.availabilities], series,
        ))
    return _print_and_maybe_export(result, "\n".join(lines), args.json)


def _cmd_fig4(args) -> int:
    result = run_fig4()
    text = format_table(
        ["application", "static ISP", "ActivePy"],
        [[r.name, f"{r.static_speedup:.3f}x", f"{r.activepy_speedup:.3f}x"]
         for r in result.rows],
    )
    text += (f"\n\ngeomean: static {result.static_geomean:.3f}x, "
             f"ActivePy {result.activepy_geomean:.3f}x")
    return _print_and_maybe_export(result, text, args.json)


def _cmd_fig5(args) -> int:
    result = run_fig5()
    text = format_table(
        ["application", "availability", "ActivePy", "w/o migration"],
        [[r.name, f"{r.availability:.0%}",
          f"{r.with_migration_speedup:.3f}x",
          f"{r.without_migration_speedup:.3f}x"] for r in result.rows],
    )
    text += f"\n\nmigration gain at 10%: {result.mean_gain(0.1):.2f}x"
    return _print_and_maybe_export(result, text, args.json)


def _cmd_ladder(args) -> int:
    result = run_overhead_ladder()
    text = "\n".join(
        f"{mode:<9} +{result.mean_overhead(mode) * 100:.1f}%"
        for mode in ("python", "cython", "activepy")
    )
    return _print_and_maybe_export(result, text, args.json)


def _cmd_prediction(args) -> int:
    result = run_prediction_accuracy()
    text = (
        f"geomean error excl. outliers: "
        f"{result.geomean_error_excluding_outliers() * 100:.1f}%\n"
        f"max CSR over-estimate: {result.max_csr_overestimate():.2f}x"
    )
    return _print_and_maybe_export(result, text, args.json)


def _cmd_chaos_fleet(args) -> int:
    from .fleet import FleetCampaignConfig, default_tenants, run_fleet_campaign

    if args.workload is not None:
        print("repro chaos: error: --fleet and --workload are mutually "
              "exclusive (replay a fleet seed with --fleet --runs 1 --seed S)",
              file=sys.stderr)
        return 2
    if args.sdc or args.no_validate or args.no_verify:
        print("repro chaos: error: --sdc/--no-validate/--no-verify are "
              "single-machine campaign knobs; the fleet campaign's planted "
              "bug is --no-isolation", file=sys.stderr)
        return 2
    if args.devices < 1 or args.tenants < 1 or args.jobs < 1:
        print("repro chaos: error: --devices, --tenants and --jobs must all "
              "be at least 1", file=sys.stderr)
        return 2
    config = FleetCampaignConfig(
        runs=args.runs,
        device_count=args.devices,
        tenants=default_tenants(args.tenants),
        job_count=args.jobs,
        base_seed=args.seed,
        fault_count=args.fault_count,
        scale=args.scale,
        no_isolation=args.no_isolation,
    )

    def progress(outcome):
        mark = "ok" if outcome.ok else "VIOLATION"
        print(f"  run {outcome.seed - config.base_seed:>4} seed={outcome.seed:<6} "
              f"completed={outcome.completed:<3} degraded={outcome.degraded:<3} "
              f"shed={outcome.shed:<3} {mark}")

    result = run_fleet_campaign(
        config, on_outcome=progress if args.verbose else None,
    )
    print(result.render())
    if args.json:
        export.dump(result, args.json)
        print(f"wrote {args.json}")
    return 0 if result.ok else 1


def _cmd_fleet_run(args) -> int:
    from .faults.spec import FaultKind, FaultPlan, FaultSpec
    from .fleet import Fleet, FleetConfig, default_tenants

    specs = []
    if args.lose_device is not None:
        specs.append(FaultSpec(
            kind=FaultKind.DEVICE_LOST_MID_JOB,
            at_time=args.lose_at,
            target=args.lose_device,
            duration_s=args.rejoin_after,
        ))
    config = FleetConfig(
        device_count=args.devices,
        tenants=default_tenants(args.tenants),
        job_count=args.jobs,
        seed=args.seed,
        target_load=args.target_load,
        scale=args.scale,
        plan=FaultPlan(specs=tuple(specs), seed=args.seed),
    )
    timeline = getattr(args, "timeline", False)
    trace_out = getattr(args, "trace_out", None)
    obs = None
    if timeline or trace_out is not None:
        if args.window <= 0:
            print(f"repro fleet: error: --window must be positive, "
                  f"got {args.window}", file=sys.stderr)
            return 2
        obs = Observability.with_timeseries(window_s=args.window)
    report = Fleet(config, obs=obs).run()
    print(report.render())
    if timeline and obs is not None:
        print()
        print(f"timeline (window {obs.timeseries.window_s:g}s simulated, "
              f"one sparkline per series):")
        print(obs.timeseries.render())
    if trace_out is not None:
        from .fleet import write_fleet_chrome_trace
        from .obs import validate_chrome_trace

        trace = write_fleet_chrome_trace(report, trace_out)
        problems = validate_chrome_trace(trace)
        if problems:
            for problem in problems:
                print(f"repro fleet: invalid trace: {problem}",
                      file=sys.stderr)
            return 1
        print(f"wrote {trace_out} ({len(trace['traceEvents'])} event(s)) — "
              f"validates clean")
    if args.json:
        export.dump(report, args.json)
        print(f"wrote {args.json}")
    return 0


def _cmd_chaos(args) -> int:
    import dataclasses

    from .chaos import CampaignConfig, ChaosHarness, run_campaign
    from .chaos.campaign import replay_command
    from .chaos.shrink import render_plan
    from .config import DEFAULT_CONFIG

    if args.fleet:
        if args.runs < 1 or args.fault_count < 1:
            print("repro chaos: error: --runs and --fault-count must be at "
                  "least 1", file=sys.stderr)
            return 2
        return _cmd_chaos_fleet(args)
    if args.runs < 1:
        print(f"repro chaos: error: --runs must be at least 1, got {args.runs}",
              file=sys.stderr)
        return 2
    if args.workers < 1:
        print(f"repro chaos: error: --workers must be at least 1, "
              f"got {args.workers}", file=sys.stderr)
        return 2
    if args.fault_count < 1:
        print(f"repro chaos: error: --fault-count must be at least 1, "
              f"got {args.fault_count}", file=sys.stderr)
        return 2

    system_config = DEFAULT_CONFIG
    if args.no_validate:
        # The deliberately planted bug: trust checkpoint records without
        # CRC validation.  Campaigns with torn-write faults must catch it.
        system_config = dataclasses.replace(system_config, checkpoint_validate=False)
    if args.sdc or args.no_verify:
        # Silent-corruption mode arms the integrity layer; --no-verify is
        # its planted bug — digests computed and paid for, never compared.
        system_config = dataclasses.replace(
            system_config,
            integrity_enabled=True,
            integrity_verify=not args.no_verify,
        )

    if args.workload is not None:
        # Replay mode: one fully seeded experiment, verdict on stdout.
        harness = ChaosHarness(
            system_config=system_config, scale=args.scale,
            fault_count=args.fault_count, silent_corruption=args.sdc,
        )
        outcome = harness.run_seed(args.workload, args.seed)
        print(f"replaying {args.workload} seed={args.seed} "
              f"({len(outcome.plan)} fault(s), scale {args.scale})")
        for text in render_plan(outcome.plan):
            print(f"  - {text}")
        print(f"degraded={outcome.degraded}, "
              f"fault events={outcome.fault_event_count}")
        if outcome.ok:
            print("all invariants held")
            return 0
        for violation in outcome.violations:
            print(f"VIOLATION {violation.render()}")
        return 1

    workloads = tuple(name.strip() for name in args.workloads.split(",") if name.strip())
    from .workloads import workload_names

    unknown = [name for name in workloads if name not in workload_names()]
    if unknown:
        print(f"repro chaos: error: unknown workload(s) {unknown}; "
              f"known: {sorted(workload_names())}", file=sys.stderr)
        return 2
    config = CampaignConfig(
        runs=args.runs,
        workloads=workloads,
        base_seed=args.seed,
        fault_count=args.fault_count,
        scale=args.scale,
        system_config=system_config,
        silent_corruption=args.sdc,
    )

    def progress(outcome):
        mark = "ok" if outcome.ok else "VIOLATION"
        print(f"  run {outcome.seed - config.base_seed:>4} "
              f"{outcome.workload:<14} seed={outcome.seed:<6} "
              f"degraded={str(outcome.degraded):<5} {mark}")

    on_outcome = progress if args.verbose else None
    if args.workers > 1:
        from .parallel import run_campaign_parallel

        result = run_campaign_parallel(config, workers=args.workers,
                                       on_outcome=on_outcome)
    else:
        result = run_campaign(config, on_outcome=on_outcome)
    print(result.render())
    if args.json:
        export.dump(result, args.json)
        print(f"wrote {args.json}")
    return 0 if result.ok else 1


def _cmd_faults_list(args) -> int:
    from .faults.spec import FAULT_KIND_INFO, FLEET_KINDS, SILENT_KINDS, FaultKind

    rows = []
    for kind in FaultKind:
        description, target = FAULT_KIND_INFO[kind]
        if kind in SILENT_KINDS:
            klass = "silent"
        elif kind in FLEET_KINDS:
            klass = "fleet"
        else:
            klass = "loud"
        rows.append([kind.value, klass, target, description])
    print(format_table(["kind", "class", "default target", "description"], rows))
    print()
    print("loud faults fail operations the runtime can see; silent faults "
          "corrupt data\nin flight and are only caught by the integrity "
          "layer (chaos --sdc); fleet faults\nland on the rack scheduler "
          "(chaos --fleet), never on one machine's injector.")
    return 0


def _cmd_explain(args) -> int:
    from .obs import build_critical_path

    obs = Observability.with_attribution()
    report = _run_observed(args.workload, args.scale, obs)
    print(f"prof cache : {report.sampling_cache_status}")
    path = build_critical_path(obs)
    attribution = path.attribution
    print()
    if report.explanation is not None:
        print(report.explanation.render())
        print()
    print(path.render(max_steps=args.max_steps))
    print()
    print(attribution.render())
    if args.json:
        payload = {
            "workload": args.workload,
            "scale": args.scale,
            "total_seconds": report.total_seconds,
            "explanation": (
                report.explanation.to_jsonable()
                if report.explanation is not None else None
            ),
            "critical_path": path.to_jsonable(),
            "attribution": attribution.to_jsonable(),
        }
        export.dump(payload, args.json)
        print(f"\nwrote {args.json}")
    return 0


def _cmd_bench(args) -> int:
    from .wallbench import run_wall_bench, write_wall_bench

    payload = run_wall_bench(workers=args.workers, repeats=args.repeats)
    warm = payload["warm_run"]
    campaign = payload["parallel_campaign"]
    for name, row in warm["per_workload"].items():
        print(f"warm run   : {name:<14} "
              f"{row['cold_wall_seconds'] * 1e3:7.1f} ms cold -> "
              f"{row['warm_wall_seconds'] * 1e3:7.1f} ms warm "
              f"({row['speedup']:.2f}x)")
    print(f"campaign   : {campaign['runs']} run(s), "
          f"workers={campaign['workers']}  "
          f"{campaign['serial_wall_seconds']:.2f} s serial baseline -> "
          f"{campaign['parallel_wall_seconds']:.2f} s "
          f"({campaign['speedup']:.2f}x)")
    micro = payload["engine_microbench"]
    print(f"event engine: {micro['events']} event(s)  "
          f"{micro['object_events_per_second'] / 1e6:.2f} M/s object -> "
          f"{micro['array_events_per_second'] / 1e6:.2f} M/s array "
          f"({micro['speedup']:.2f}x)")
    root_path, canonical = write_wall_bench(payload, workers=args.workers)
    print(f"wrote {root_path}")
    print(f"wrote {canonical}")
    return 0


def _cmd_perf_check(args) -> int:
    from pathlib import Path

    from .perfgate import check

    report = check(
        Path(args.root),
        baselines_dir=Path(args.baselines) if args.baselines else None,
        planted_regression=args.planted_regression,
    )
    print(report.render())
    if args.json:
        export.dump(report.to_jsonable(), args.json)
        print(f"wrote {args.json}")
    return 0 if report.ok else 1


def _cmd_perf_snapshot(args) -> int:
    from pathlib import Path

    from .perfgate import snapshot

    written = snapshot(
        Path(args.root),
        baselines_dir=Path(args.baselines) if args.baselines else None,
    )
    for path in written:
        print(f"wrote {path}")
    return 0


def _cmd_validate(args) -> int:
    from .lang.checks import validate_program

    workload = get_workload(args.workload, scale=args.scale)
    report = validate_program(workload.program, workload.dataset)
    print(report.render())
    return 0 if report.ok else 1


def _cmd_selfcheck(args) -> int:
    from .analysis.selfcheck import measure_selfcheck, run_selfcheck

    if args.repin:
        measured = measure_selfcheck()
        lines = [
            '"""Pinned self-check expectations.',
            "",
            "Generated by ``python -m repro selfcheck --repin`` against the",
            "calibrated default platform; ``run_selfcheck`` compares fresh",
            "measurements to these within a small tolerance.",
            '"""',
            "",
            "EXPECTED_SELFCHECK = {",
        ]
        for key, value in sorted(measured.items()):
            lines.append(f'    "{key}": {value},')
        lines.append("}")
        import repro.analysis.expected as expected_module

        path = expected_module.__file__
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        print(f"repinned {len(measured)} expectations to {path}")
        return 0

    result = run_selfcheck(tolerance=args.tolerance)
    print(result.render())
    if not result.ok:
        for drift in result.drifted:
            print(f"  {drift}")
    return 0 if result.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ActivePy reproduction (DAC 2023) — simulated ISP platform",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the workload suite").set_defaults(fn=_cmd_list)

    workload_choices = sorted(
        ["blackscholes", "kmeans", "lightgbm", "matrixmul", "mixedgemm",
         "pagerank", "sparsemv", "tpch_q1", "tpch_q6", "tpch_q14"]
    )

    run_parser = sub.add_parser("run", help="run one workload end to end")
    run_parser.add_argument("workload", choices=workload_choices)
    run_parser.add_argument("--scale", type=float, default=1.0,
                            help="input scale in (0, 1] (default: paper scale)")
    run_parser.add_argument("--trace", action="store_true",
                            help="render the execution timeline")
    run_parser.add_argument(
        "--stress", type=float, default=None, metavar="AVAIL",
        help="throttle the CSE to AVAIL once the offloaded work reaches "
             "50%% progress (the paper's Figure 5 scenario)",
    )
    run_parser.add_argument(
        "--fault-count", type=int, default=0, metavar="N",
        help="inject N deterministic faults (crashes, lost completions, "
             "media errors, link degradation) during the run",
    )
    run_parser.add_argument(
        "--fault-seed", type=int, default=None, metavar="SEED",
        help="seed for the generated fault plan (default: config fault_seed)",
    )
    run_parser.add_argument(
        "--plan-mode", choices=("greedy", "search"), default="greedy",
        help="how step 3 picks the host/CSD split: the paper's greedy "
             "Algorithm 1, or the branch-and-bound speculative search",
    )
    run_parser.add_argument("--json", metavar="PATH", default=None)
    run_parser.set_defaults(fn=_cmd_run)

    plan_parser = sub.add_parser(
        "plan", help="plan a workload without executing it"
    )
    plan_sub = plan_parser.add_subparsers(dest="plan_command", required=True)
    plan_search = plan_sub.add_parser(
        "search",
        help="branch-and-bound plan search over forked simulator states, "
             "diffed against greedy Algorithm 1",
    )
    plan_search.add_argument("workload", choices=workload_choices)
    plan_search.add_argument("--scale", type=float, default=1.0,
                             help="input scale in (0, 1]")
    plan_search.add_argument(
        "--beam-width", type=int, default=None, metavar="W",
        help="cap node expansions per depth (default: unbounded)",
    )
    plan_search.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for speculative step evaluation; any N "
             "returns bit-identical plans and metrics (default: 1)",
    )
    plan_search.add_argument("--json", metavar="PATH", default=None,
                             help="also write the search report as JSON")
    plan_search.set_defaults(fn=_cmd_plan_search)

    for name, fn, help_text in (
        ("table1", _cmd_table1, "regenerate Table I"),
        ("fig2", _cmd_fig2, "regenerate Figure 2 (availability sweep)"),
        ("fig4", _cmd_fig4, "regenerate Figure 4 (ActivePy vs static ISP)"),
        ("fig5", _cmd_fig5, "regenerate Figure 5 (migration study)"),
        ("ladder", _cmd_ladder, "regenerate the §V runtime-overhead ladder"),
        ("prediction", _cmd_prediction, "regenerate the §V accuracy result"),
    ):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("--json", metavar="PATH", default=None)
        cmd.set_defaults(fn=fn)

    metrics_parser = sub.add_parser(
        "metrics", help="observability: run a workload and report its metrics"
    )
    metrics_sub = metrics_parser.add_subparsers(dest="metrics_command",
                                                required=True)
    metrics_run = metrics_sub.add_parser(
        "run", help="run one workload with metrics collection enabled"
    )
    metrics_run.add_argument("workload", choices=workload_choices)
    metrics_run.add_argument("--scale", type=float, default=1.0,
                             help="input scale in (0, 1]")
    metrics_run.add_argument("--json", metavar="PATH", default=None,
                             help="also write the metrics snapshot as JSON")
    metrics_run.set_defaults(fn=_cmd_metrics)

    trace_parser = sub.add_parser(
        "trace", help="observability: run a workload and export a Chrome trace"
    )
    trace_sub = trace_parser.add_subparsers(dest="trace_command", required=True)
    trace_run = trace_sub.add_parser(
        "run", help="run one workload with span tracing enabled"
    )
    trace_run.add_argument("workload", choices=workload_choices)
    trace_run.add_argument("--scale", type=float, default=1.0,
                           help="input scale in (0, 1]")
    trace_run.add_argument(
        "--out", metavar="PATH", default=None,
        help="Chrome trace_event output path (default: <workload>_trace.json)",
    )
    trace_run.set_defaults(fn=_cmd_trace)

    chaos_parser = sub.add_parser(
        "chaos",
        help="run a randomized fault campaign (or replay one seeded run)",
    )
    chaos_parser.add_argument(
        "--runs", type=int, default=25,
        help="number of seeded campaign runs (default: 25)",
    )
    chaos_parser.add_argument(
        "--workloads", default=",".join(
            ("tpch_q6", "kmeans", "blackscholes", "pagerank")
        ),
        help="comma-separated workload rotation for the campaign",
    )
    chaos_parser.add_argument(
        "--workload", default=None, choices=workload_choices,
        help="replay mode: run exactly one workload with --seed and exit",
    )
    chaos_parser.add_argument(
        "--seed", type=int, default=0,
        help="base seed (campaign) or the exact seed to replay (--workload)",
    )
    chaos_parser.add_argument("--fault-count", type=int, default=3, metavar="N")
    chaos_parser.add_argument("--scale", type=float, default=2**-6)
    chaos_parser.add_argument(
        "--no-validate", action="store_true",
        help="disable checkpoint CRC validation (the planted bug the "
             "campaign exists to catch)",
    )
    chaos_parser.add_argument(
        "--sdc", action="store_true",
        help="include silent-data-corruption faults in the plan pool and "
             "enable the end-to-end integrity layer that catches them",
    )
    chaos_parser.add_argument(
        "--no-verify", action="store_true",
        help="enable the integrity layer but skip digest comparison (the "
             "planted bug: corruption must then reach the report and "
             "violate corruption-detected-before-report)",
    )
    chaos_parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="run the campaign across N worker processes (same outcomes "
             "as serial, just faster; default: 1)",
    )
    chaos_parser.add_argument(
        "--fleet", action="store_true",
        help="run the campaign at rack scale: seeded fleets of --devices "
             "machines serving --tenants tenants under fleet-level faults "
             "(device loss, tenant fault storms)",
    )
    chaos_parser.add_argument(
        "--devices", type=int, default=4, metavar="N",
        help="fleet mode: simulated CSD machines in the rack (default: 4)",
    )
    chaos_parser.add_argument(
        "--tenants", type=int, default=3, metavar="N",
        help="fleet mode: tenants sharing the rack (default: 3)",
    )
    chaos_parser.add_argument(
        "--jobs", type=int, default=24, metavar="N",
        help="fleet mode: jobs per seeded run (default: 24)",
    )
    chaos_parser.add_argument(
        "--no-isolation", action="store_true",
        help="fleet mode: skip the per-job device scrub between tenants "
             "(the planted bug the tenant-isolation invariant must catch)",
    )
    chaos_parser.add_argument("--verbose", action="store_true",
                              help="print a line per campaign run")
    chaos_parser.add_argument("--json", metavar="PATH", default=None)
    chaos_parser.set_defaults(fn=_cmd_chaos)

    fleet_parser = sub.add_parser(
        "fleet", help="rack-scale fleet serving over simulated CSD machines"
    )
    fleet_sub = fleet_parser.add_subparsers(dest="fleet_command", required=True)
    fleet_run = fleet_sub.add_parser(
        "run",
        help="run one seeded fleet: open-loop traffic through admission "
             "control onto N devices, with per-tenant SLO percentiles",
    )
    def add_fleet_args(parser) -> None:
        parser.add_argument("--devices", type=int, default=4, metavar="N")
        parser.add_argument("--tenants", type=int, default=3, metavar="N")
        parser.add_argument("--jobs", type=int, default=24, metavar="N")
        parser.add_argument("--seed", type=int, default=0)
        parser.add_argument(
            "--target-load", type=float, default=0.7,
            help="offered load as a fraction of fleet service capacity "
                 "(default: 0.7; push past 1.0 to watch graceful degradation)",
        )
        parser.add_argument("--scale", type=float, default=2**-6)
        parser.add_argument(
            "--lose-device", default=None, metavar="NAME",
            help="inject one DEVICE_LOST_MID_JOB against this device "
                 "(csd, csd1, ...)",
        )
        parser.add_argument(
            "--lose-at", type=float, default=0.5, metavar="T",
            help="simulated time of the injected device loss (default: 0.5)",
        )
        parser.add_argument(
            "--rejoin-after", type=float, default=0.0, metavar="S",
            help="window after which the lost device rejoins (0 = never)",
        )
        parser.add_argument(
            "--window", type=float, default=0.25, metavar="S",
            help="flight-recorder rate/percentile window in simulated "
                 "seconds (default: 0.25)",
        )
        parser.add_argument(
            "--trace-out", metavar="PATH", default=None,
            help="also export the fleet Chrome trace (jobs as spans per "
                 "device track, failover/shed/loss as instants)",
        )
        parser.add_argument("--json", metavar="PATH", default=None)

    add_fleet_args(fleet_run)
    fleet_run.add_argument(
        "--timeline", action="store_true",
        help="attach the flight recorder and print the ASCII sparkline "
             "timeline (utilization, queue depth, sliding-window SLOs, "
             "alerts)",
    )
    fleet_run.set_defaults(fn=_cmd_fleet_run)

    obs_parser = sub.add_parser(
        "obs", help="observability: the fleet flight-recorder dashboard"
    )
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)
    obs_dashboard = obs_sub.add_parser(
        "dashboard",
        help="run one seeded fleet with the flight recorder attached and "
             "render the sparkline dashboard (timeline always on)",
    )
    add_fleet_args(obs_dashboard)
    obs_dashboard.set_defaults(fn=_cmd_fleet_run, timeline=True)

    faults_parser = sub.add_parser(
        "faults", help="the deterministic fault-injection catalogue"
    )
    faults_sub = faults_parser.add_subparsers(dest="faults_command",
                                              required=True)
    faults_list = faults_sub.add_parser(
        "list", help="list every injectable fault kind with its default target"
    )
    faults_list.set_defaults(fn=_cmd_faults_list)

    explain_parser = sub.add_parser(
        "explain",
        help="observability: attribute a run's time and audit the plan",
    )
    explain_sub = explain_parser.add_subparsers(dest="explain_command",
                                                required=True)
    explain_run = explain_sub.add_parser(
        "run",
        help="run one workload with attribution and explain where the "
             "time went (plan vs. reality, critical path, bottlenecks)",
    )
    explain_run.add_argument("workload", choices=workload_choices)
    explain_run.add_argument("--scale", type=float, default=1.0,
                             help="input scale in (0, 1]")
    explain_run.add_argument(
        "--max-steps", type=int, default=40,
        help="critical-path steps to print (default: 40)",
    )
    explain_run.add_argument("--json", metavar="PATH", default=None,
                             help="also write the full explanation as JSON")
    explain_run.set_defaults(fn=_cmd_explain)

    bench_parser = sub.add_parser(
        "bench",
        help="benchmark the performance layer's wall-clock wins "
             "(profile cache, parallel campaigns) into BENCH_wall.json",
    )
    bench_parser.add_argument(
        "--workers", type=int, default=4, metavar="N",
        help="worker processes for the campaign arm (default: 4)",
    )
    bench_parser.add_argument(
        "--repeats", type=int, default=3,
        help="best-of repeats for the warm/cold run arm (default: 3)",
    )
    bench_parser.set_defaults(fn=_cmd_bench)

    perf_parser = sub.add_parser(
        "perf", help="the automated perf-regression gate over BENCH_*.json"
    )
    perf_sub = perf_parser.add_subparsers(dest="perf_command", required=True)
    perf_check = perf_sub.add_parser(
        "check",
        help="diff fresh benchmark results against committed baselines "
             "(exit 1 on regression)",
    )
    perf_check.add_argument(
        "--root", default=".",
        help="repo root holding BENCH_*.json / bench_results/ (default: .)",
    )
    perf_check.add_argument(
        "--baselines", default=None, metavar="DIR",
        help="baseline directory (default: <root>/perf_baselines)",
    )
    perf_check.add_argument(
        "--planted-regression", action="store_true",
        help="perturb every fresh value in memory before comparing — the "
             "smoke test proving the gate can fail",
    )
    perf_check.add_argument("--json", metavar="PATH", default=None)
    perf_check.set_defaults(fn=_cmd_perf_check)
    perf_snapshot = perf_sub.add_parser(
        "snapshot",
        help="capture current results as the committed baselines (the "
             "paved road for landing an intentional model change)",
    )
    perf_snapshot.add_argument("--root", default=".")
    perf_snapshot.add_argument("--baselines", default=None, metavar="DIR")
    perf_snapshot.set_defaults(fn=_cmd_perf_snapshot)

    validate_parser = sub.add_parser(
        "validate", help="pre-flight check a workload's program definition"
    )
    validate_parser.add_argument("workload")
    validate_parser.add_argument("--scale", type=float, default=2**-7)
    validate_parser.set_defaults(fn=_cmd_validate)

    selfcheck_parser = sub.add_parser(
        "selfcheck",
        help="verify headline numbers against pinned expectations",
    )
    selfcheck_parser.add_argument("--tolerance", type=float, default=0.02)
    selfcheck_parser.add_argument(
        "--repin", action="store_true",
        help="overwrite the pinned expectations with fresh measurements",
    )
    selfcheck_parser.set_defaults(fn=_cmd_selfcheck)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
