"""Page-mapping flash translation layer with greedy garbage collection.

The FTL maps logical pages to physical pages, performs out-of-place
updates, and reclaims space with a greedy (fewest-valid-pages-first)
garbage collector.  GC is the paper's canonical source of *storage
management contention* (§II-B3): while the controller relocates pages
it steals CSE cycles, which is one of the system dynamics ActivePy's
monitor must survive.  :class:`~repro.storage.csd.ComputationalStorageDevice`
converts GC busy-time into a CSE availability drop.
"""

from __future__ import annotations

from typing import Optional

from ..errors import FlashError, StorageError
from ..obs import Observability
from .nand import FlashArray, PageState

__all__ = ["PageMappingFTL"]


class PageMappingFTL:
    """Logical-to-physical page mapping over a :class:`FlashArray`.

    Parameters
    ----------
    array:
        The physical medium.
    gc_threshold_blocks:
        GC triggers when free blocks drop to this watermark.
    overprovision_fraction:
        Fraction of physical capacity withheld from the logical space
        so GC always has room to relocate into.
    """

    def __init__(
        self,
        array: FlashArray,
        gc_threshold_blocks: int = 2,
        overprovision_fraction: float = 0.1,
        victim_policy: str = "greedy",
        wear_weight: float = 0.5,
        obs: Optional[Observability] = None,
        metric_prefix: str = "ftl",
    ) -> None:
        if gc_threshold_blocks < 1:
            raise StorageError("gc_threshold_blocks must be at least 1")
        if not 0 <= overprovision_fraction < 1:
            raise StorageError("overprovision_fraction must lie in [0, 1)")
        if victim_policy not in ("greedy", "wear_aware"):
            raise StorageError(
                f"victim_policy must be 'greedy' or 'wear_aware', "
                f"got {victim_policy!r}"
            )
        if wear_weight < 0:
            raise StorageError("wear_weight must be non-negative")
        self.array = array
        self.gc_threshold_blocks = gc_threshold_blocks
        #: "greedy" minimises moved pages; "wear_aware" also penalises
        #: re-erasing already-worn blocks, trading write amplification
        #: for a tighter erase-count distribution.
        self.victim_policy = victim_policy
        self.wear_weight = wear_weight
        geometry = array.geometry
        logical_pages = int(geometry.total_pages * (1 - overprovision_fraction))
        #: Number of logical pages addressable by clients.
        self.logical_pages = logical_pages
        self._l2p: dict[int, int] = {}
        self._p2l: dict[int, int] = {}
        self._active_block: Optional[int] = None
        self.gc_runs = 0
        self.gc_pages_moved = 0
        self.gc_busy_seconds = 0.0
        self.host_writes = 0
        self.total_programs_for_writes = 0
        self.obs = obs if obs is not None else Observability.disabled()
        self._m_gc_runs = f"{metric_prefix}.gc_runs"
        self._m_gc_moved = f"{metric_prefix}.gc_pages_moved"
        self._m_gc_busy = f"{metric_prefix}.gc_busy_seconds"
        self._m_host_writes = f"{metric_prefix}.host_writes"

    # --- helpers -----------------------------------------------------------

    def _check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self.logical_pages:
            raise StorageError(
                f"logical page {lpn} out of range [0, {self.logical_pages})"
            )

    def _pick_active_block(self) -> int:
        """Find a block with free pages to program into."""
        if self._active_block is not None:
            if not self.array.blocks[self._active_block].is_full:
                return self._active_block
        for block in self.array.blocks:
            if block.free_pages > 0 and not block.invalid_pages and block.write_pointer == 0:
                self._active_block = block.block_id
                return block.block_id
        # Fall back to any partially written block with room.
        for block in self.array.blocks:
            if block.free_pages > 0:
                self._active_block = block.block_id
                return block.block_id
        raise FlashError("no free pages anywhere; GC failed to reclaim space")

    # --- client operations ---------------------------------------------------

    def read(self, lpn: int) -> float:
        """Read a logical page; returns the medium latency."""
        self._check_lpn(lpn)
        ppn = self._l2p.get(lpn)
        if ppn is None:
            raise StorageError(f"logical page {lpn} was never written")
        return self.array.read_page(ppn)

    def write(self, lpn: int) -> float:
        """Write (or update) a logical page out-of-place.

        Returns the total latency including any GC triggered by the
        write.  GC time also accumulates in :attr:`gc_busy_seconds` so
        the device can account contention.
        """
        self._check_lpn(lpn)
        latency = self._maybe_collect_garbage()
        # Secure the destination page *before* touching the old one, so
        # exhaustion mid-write leaves the previous mapping intact.
        block_idx = self._pick_active_block()
        ppn, program_latency = self.array.program_next_page(block_idx)
        old_ppn = self._l2p.get(lpn)
        if old_ppn is not None:
            self.array.invalidate_page(old_ppn)
            del self._p2l[old_ppn]
        self._l2p[lpn] = ppn
        self._p2l[ppn] = lpn
        self.host_writes += 1
        self.total_programs_for_writes += 1
        if self.obs.enabled:
            self.obs.metrics.counter(self._m_host_writes).inc()
        return latency + program_latency

    def is_mapped(self, lpn: int) -> bool:
        self._check_lpn(lpn)
        return lpn in self._l2p

    def physical_of(self, lpn: int) -> int:
        self._check_lpn(lpn)
        ppn = self._l2p.get(lpn)
        if ppn is None:
            raise StorageError(f"logical page {lpn} was never written")
        return ppn

    # --- garbage collection ----------------------------------------------------

    def _erasable_blocks(self) -> list[int]:
        """Blocks with no valid pages but some stale content."""
        return [
            b.block_id
            for b in self.array.blocks
            if b.valid_pages == 0 and (b.invalid_pages or b.write_pointer > 0)
        ]

    def _victim_block(self) -> Optional[int]:
        """Victim selection per the configured policy."""
        candidates = [
            b for b in self.array.blocks
            if b.is_full and b.block_id != self._active_block
        ]
        if not candidates:
            return None
        if self.victim_policy == "wear_aware":
            mean_erases = sum(b.erase_count for b in candidates) / len(candidates)

            def score(block):
                return block.valid_pages + self.wear_weight * max(
                    0.0, block.erase_count - mean_erases
                )

            victim = min(candidates, key=score)
        else:
            victim = min(candidates, key=lambda b: b.valid_pages)
        if victim.valid_pages == victim.geometry.pages_per_block:
            return None  # nothing reclaimable
        return victim.block_id

    def erase_count_spread(self) -> int:
        """Max minus min per-block erase count (wear-evenness metric)."""
        counts = [b.erase_count for b in self.array.blocks]
        return max(counts) - min(counts)

    def _maybe_collect_garbage(self) -> float:
        """Run GC rounds until above the free-block watermark."""
        latency = 0.0
        guard = self.array.geometry.total_blocks * 2
        while self.array.free_blocks < self.gc_threshold_blocks and guard > 0:
            guard -= 1
            moved = self._collect_one_block()
            if moved is None:
                break
            latency += moved
        return latency

    def _collect_one_block(self) -> Optional[float]:
        """Relocate one victim block's valid pages and erase it."""
        # Erase already-empty dirty blocks first: cheapest reclamation.
        for block_id in self._erasable_blocks():
            latency = self.array.erase_block(block_id)
            self.gc_runs += 1
            self.gc_busy_seconds += latency
            self._record_gc(latency, moved=0)
            return latency

        victim_id = self._victim_block()
        if victim_id is None:
            return None
        victim = self.array.blocks[victim_id]
        latency = 0.0
        moved_pages = 0
        geometry = self.array.geometry
        for page_idx, state in enumerate(victim.pages):
            if state is not PageState.VALID:
                continue
            ppn = victim_id * geometry.pages_per_block + page_idx
            lpn = self._p2l[ppn]
            latency += self.array.read_page(ppn)
            # Program the relocated copy before invalidating the old
            # one: a relocation failure must never orphan a mapping.
            block_idx = self._pick_active_block()
            new_ppn, program_latency = self.array.program_next_page(block_idx)
            latency += program_latency
            self.array.invalidate_page(ppn)
            del self._p2l[ppn]
            self._l2p[lpn] = new_ppn
            self._p2l[new_ppn] = lpn
            self.gc_pages_moved += 1
            moved_pages += 1
        latency += self.array.erase_block(victim_id)
        self.gc_runs += 1
        self.gc_busy_seconds += latency
        self._record_gc(latency, moved=moved_pages)
        return latency

    def _record_gc(self, latency: float, moved: int) -> None:
        if self.obs.enabled:
            metrics = self.obs.metrics
            metrics.counter(self._m_gc_runs).inc()
            metrics.counter(self._m_gc_busy).inc(latency)
            if moved:
                metrics.counter(self._m_gc_moved).inc(moved)

    def write_amplification(self) -> float:
        """Total programs issued per host write (1.0 = no GC traffic)."""
        if self.host_writes == 0:
            return 0.0
        return self.array.programs / self.host_writes
