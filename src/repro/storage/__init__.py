"""Computational storage device (CSD) substrate.

This package models the device in Figure 1 of the paper: NAND flash
arrays behind an FTL, device DRAM, NVMe queue pairs toward the host,
PCIe BAR windows exposing device memory, and a computational storage
engine (CSE) that executes offloaded tasks near the data.
"""

from .bar import BarWindow
from .cse import ComputationalStorageEngine
from .csd import ComputationalStorageDevice
from .ftl import PageMappingFTL
from .nand import FlashArray, FlashGeometry, PageState
from .nvme import CompletionQueue, QueuePair, SubmissionQueue
from .tenant import BackgroundLoad

__all__ = [
    "BackgroundLoad",
    "BarWindow",
    "ComputationalStorageEngine",
    "ComputationalStorageDevice",
    "PageMappingFTL",
    "FlashArray",
    "FlashGeometry",
    "PageState",
    "CompletionQueue",
    "QueuePair",
    "SubmissionQueue",
]
