"""NVMe-style submission/completion queue pairs.

ActivePy invokes CSD functions the way NVMe invokes commands (paper
§III-C0b): the host writes a request into a submission queue mapped in
device memory, rings a doorbell, and the CSE pulls requests whenever it
is free; results and per-line status updates flow back through the
completion queue.  These are bounded ring buffers with explicit
head/tail indices, as in the NVMe specification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..errors import DispatchError


@dataclass(slots=True)
class Command:
    """A queued request (CSD function call or control message)."""

    opcode: str
    payload: Any = None
    command_id: int = 0


@dataclass(slots=True)
class Completion:
    """A completion entry, matched to a command by id."""

    command_id: int
    status: str = "ok"
    payload: Any = None


class _Ring:
    """Bounded ring buffer with NVMe-style head/tail semantics."""

    def __init__(self, name: str, depth: int) -> None:
        if depth < 2:
            raise DispatchError(f"queue {name!r} depth must be >= 2, got {depth}")
        self.name = name
        self.depth = depth
        self._slots: list[Optional[Any]] = [None] * depth
        self.head = 0  # consumer index
        self.tail = 0  # producer index

    def __len__(self) -> int:
        return (self.tail - self.head) % self.depth

    @property
    def is_empty(self) -> bool:
        return self.head == self.tail

    @property
    def is_full(self) -> bool:
        # One slot is sacrificed to distinguish full from empty.
        return (self.tail + 1) % self.depth == self.head

    def push(self, item: Any) -> None:
        if self.is_full:
            raise DispatchError(f"queue {self.name!r} is full (depth {self.depth})")
        self._slots[self.tail] = item
        self.tail = (self.tail + 1) % self.depth

    def pop(self) -> Any:
        if self.is_empty:
            raise DispatchError(f"queue {self.name!r} is empty")
        item = self._slots[self.head]
        self._slots[self.head] = None
        self.head = (self.head + 1) % self.depth
        return item

    def pop_all(self) -> list[Any]:
        """Consume every queued item in one pass (order preserved)."""
        head, tail = self.head, self.tail
        if head == tail:
            return []
        if head < tail:
            items = self._slots[head:tail]
            self._slots[head:tail] = [None] * (tail - head)
        else:
            items = self._slots[head:] + self._slots[:tail]
            self._slots[head:] = [None] * (self.depth - head)
            self._slots[:tail] = [None] * tail
        self.head = tail
        return items


class SubmissionQueue:
    """Host-side producer ring for commands, with a doorbell."""

    def __init__(self, depth: int = 64, name: str = "sq") -> None:
        self._ring = _Ring(name, depth)
        self.doorbell_rings = 0
        self._next_command_id = 0

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def is_empty(self) -> bool:
        return self._ring.is_empty

    @property
    def is_full(self) -> bool:
        return self._ring.is_full

    def submit(self, opcode: str, payload: Any = None) -> int:
        """Enqueue a command and ring the doorbell; returns its id."""
        command_id = self._next_command_id
        self._next_command_id += 1
        self._ring.push(Command(opcode=opcode, payload=payload, command_id=command_id))
        self.doorbell_rings += 1
        return command_id

    def fetch(self) -> Command:
        """Device side: pull the oldest pending command."""
        return self._ring.pop()


class CompletionQueue:
    """Device-side producer ring for completions and status updates."""

    def __init__(self, depth: int = 64, name: str = "cq") -> None:
        self._ring = _Ring(name, depth)
        # Armed completion faults (fault injection).
        self._loss_armed = 0
        self._delay_armed_s = 0.0
        self.completions_lost = 0

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def is_empty(self) -> bool:
        return self._ring.is_empty

    # --- fault injection hooks -----------------------------------------

    def arm_loss(self, count: int = 1) -> None:
        """Silently drop the next ``count`` posted completions."""
        if count < 1:
            raise DispatchError(f"loss count must be at least 1, got {count}")
        self._loss_armed += count

    def arm_delay(self, extra_s: float) -> None:
        """Make the next completion visible to the host ``extra_s`` late."""
        if extra_s <= 0:
            raise DispatchError(f"delay must be positive, got {extra_s}")
        self._delay_armed_s = extra_s

    def consume_delay(self) -> float:
        """Host side: the extra wait the next reap must charge, once."""
        delay, self._delay_armed_s = self._delay_armed_s, 0.0
        return delay

    def post(self, completion: Completion) -> None:
        """Device side: publish a completion entry.

        An armed loss fault swallows the entry: the doorbell-side write
        happened (the device believes it completed) but the host never
        sees it — exactly the failure the dispatcher's deadline/retry
        machinery exists to survive.
        """
        if self._loss_armed > 0:
            self._loss_armed -= 1
            self.completions_lost += 1
            return
        self._ring.push(completion)

    def reap(self) -> Completion:
        """Host side: consume the oldest completion entry."""
        return self._ring.pop()

    def drain(self) -> list[Completion]:
        """Host side: consume every pending completion entry."""
        return self._ring.pop_all()


@dataclass
class QueuePair:
    """A bound submission/completion pair, as NVMe allocates them."""

    sq: SubmissionQueue = field(default_factory=SubmissionQueue)
    cq: CompletionQueue = field(default_factory=CompletionQueue)
    #: Absolute sim time until which the pair makes no progress
    #: (fault injection: controller firmware busy / queue stall).
    stalled_until: float = 0.0

    @classmethod
    def create(cls, depth: int = 64, name: str = "qp") -> "QueuePair":
        return cls(
            sq=SubmissionQueue(depth=depth, name=f"{name}.sq"),
            cq=CompletionQueue(depth=depth, name=f"{name}.cq"),
        )

    def stall(self, until: float) -> None:
        """Stall both rings until absolute sim time ``until``."""
        self.stalled_until = max(self.stalled_until, until)

    def stalled_at(self, now: float) -> bool:
        return now < self.stalled_until

    def clear(self) -> None:
        """Drop every in-flight entry (device reset loses them)."""
        while not self.sq.is_empty:
            self.sq.fetch()
        while not self.cq.is_empty:
            self.cq.reap()
        self.stalled_until = 0.0
