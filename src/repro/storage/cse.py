"""Computational storage engine (CSE).

The CSE is the in-device processor that runs offloaded tasks (the
paper's prototype uses 8 ARM Cortex-A72 cores).  It is a
:class:`~repro.hw.compute.ComputeUnit` plus two behaviours the
experiments need:

* an **availability schedule** — timed events that throttle the engine,
  modelling co-located tenants or firmware work arriving mid-run
  (Figures 2 and 5 sweep availability over 100%/50%/10%);
* **high-priority preemption flags** — the device can signal the host
  runtime through the command pages that it must reclaim the engine
  (paper §III-D case 1).
"""

from __future__ import annotations

from typing import Optional

from ..errors import CseCrashError, HardwareError
from ..hw.compute import ComputeUnit
from ..obs import Observability
from ..sim import Simulator

__all__ = ["ComputationalStorageEngine"]


class ComputationalStorageEngine(ComputeUnit):
    """An in-device compute unit with scheduled contention."""

    def __init__(
        self,
        ips: float,
        simulator: Simulator,
        cores: int = 8,
        clock_hz: float = 2.0e9,
        name: str = "csd",
        obs: Optional[Observability] = None,
    ) -> None:
        super().__init__(
            name=name,
            ips=ips,
            clock=simulator.clock,
            clock_hz=clock_hz,
            obs=obs if obs is not None else simulator.obs,
        )
        if cores <= 0:
            raise HardwareError(f"CSE needs a positive core count, got {cores}")
        self.cores = cores
        self.simulator = simulator
        self.high_priority_pending = False
        #: Pending contention handles, cancellable between experiments.
        self._scheduled_events: list = []
        self.crashed = False
        self.crashes = 0

    # --- crash / reset (fault injection) ----------------------------------

    def crash(self) -> None:
        """Crash the engine: in-flight work is lost until a reset.

        A crashed engine refuses to execute; the host observes the
        failure through missing completions and chunk errors, never
        through this flag directly.
        """
        self.crashed = True
        self.crashes += 1
        if self.obs.enabled:
            self.obs.metrics.counter(f"compute.{self.name}.crashes").inc()

    def reset(self) -> None:
        """Firmware reset: the engine comes back clean at full speed."""
        self.crashed = False
        self.high_priority_pending = False
        self.set_availability(1.0)

    def execute(self, instructions: float) -> float:
        if self.crashed:
            raise CseCrashError(f"CSE {self.name!r} is crashed; cannot execute")
        return super().execute(instructions)

    # --- contention scheduling --------------------------------------------

    def schedule_availability(self, at_time: float, fraction: float) -> None:
        """Throttle the engine to ``fraction`` at absolute sim time."""
        if not 0 < fraction <= 1:
            raise HardwareError(f"availability must lie in (0, 1], got {fraction}")
        event = self.simulator.schedule_at(
            at_time,
            lambda: self.set_availability(fraction),
            label=f"cse-availability-{fraction:.2f}",
        )
        self._scheduled_events.append(event)

    def schedule_high_priority_request(self, at_time: float) -> None:
        """Raise the preemption flag at absolute sim time.

        The host runtime observes the flag through status updates and
        must migrate the offloaded task immediately.
        """
        event = self.simulator.schedule_at(
            at_time, self._raise_high_priority, label="cse-high-priority"
        )
        self._scheduled_events.append(event)

    def _raise_high_priority(self) -> None:
        self.high_priority_pending = True

    def acknowledge_high_priority(self) -> None:
        """Host runtime acknowledges and clears the preemption flag."""
        self.high_priority_pending = False

    def cancel_scheduled(self) -> None:
        """Cancel all pending contention events (between experiments)."""
        for event in self._scheduled_events:
            event.cancel()
        self._scheduled_events.clear()

    # --- calibration --------------------------------------------------------

    def read_performance_counters(self) -> dict:
        """Architectural counters as ActivePy's estimator queries them.

        This is deliberately the *only* channel through which the
        runtime learns about the engine: nominal per-cycle throughput
        and the live counters, never the availability knob.
        """
        return {
            "ipc_nominal": self.expected_ipc(),
            "clock_hz": self.clock_hz,
            "cores": self.cores,
            "retired_instructions": self.counters.retired_instructions,
            "cycles": self.counters.cycles,
        }
