"""NAND flash array model.

Models the geometry and state rules of NAND flash: pages must be erased
(at block granularity) before they can be programmed, programs within a
block proceed in page order, and reads/programs/erases have asymmetric
latencies.  The FTL (:mod:`repro.storage.ftl`) builds on these rules;
violating them raises :class:`~repro.errors.FlashError`, which is how
the test suite checks the FTL never misuses the medium.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..errors import FlashError, UncorrectableMediaError
from ..obs import Observability

__all__ = ["Block", "FlashArray", "FlashGeometry", "PageState"]


class PageState(enum.Enum):
    """Lifecycle of a physical flash page."""

    FREE = "free"        # erased, programmable
    VALID = "valid"      # holds live data
    INVALID = "invalid"  # holds stale data, awaiting erase


@dataclass(frozen=True)
class FlashGeometry:
    """Static shape of a flash array."""

    channels: int = 8
    blocks_per_channel: int = 64
    pages_per_block: int = 256
    page_bytes: int = 16384
    read_latency_s: float = 60e-6
    program_latency_s: float = 600e-6
    erase_latency_s: float = 3e-3

    def __post_init__(self) -> None:
        for name in ("channels", "blocks_per_channel", "pages_per_block", "page_bytes"):
            if getattr(self, name) <= 0:
                raise FlashError(f"geometry field {name} must be positive")
        for name in ("read_latency_s", "program_latency_s", "erase_latency_s"):
            if getattr(self, name) <= 0:
                raise FlashError(f"geometry field {name} must be positive")

    @property
    def total_blocks(self) -> int:
        return self.channels * self.blocks_per_channel

    @property
    def pages_per_channel(self) -> int:
        return self.blocks_per_channel * self.pages_per_block

    @property
    def total_pages(self) -> int:
        return self.total_blocks * self.pages_per_block

    @property
    def capacity_bytes(self) -> int:
        return self.total_pages * self.page_bytes

    @property
    def peak_read_bandwidth(self) -> float:
        """Aggregate read bandwidth with all channels streaming."""
        return self.channels * self.page_bytes / self.read_latency_s


class Block:
    """One erase block: a vector of page states plus a write pointer.

    Valid/invalid counts are maintained incrementally — the FTL's GC
    victim selection consults them on every write, so recounting the
    page vector would make churny workloads quadratic.
    """

    def __init__(self, geometry: FlashGeometry, block_id: int) -> None:
        self.geometry = geometry
        self.block_id = block_id
        self.pages = [PageState.FREE] * geometry.pages_per_block
        self.write_pointer = 0
        self.erase_count = 0
        self.valid_pages = 0
        self.invalid_pages = 0

    @property
    def free_pages(self) -> int:
        return self.geometry.pages_per_block - self.write_pointer

    @property
    def is_full(self) -> bool:
        return self.write_pointer >= self.geometry.pages_per_block


class FlashArray:
    """All blocks across all channels, with state-rule enforcement.

    Physical pages are addressed by a flat index; helpers convert to
    (channel, block, page).  The array reports latency costs but does
    not own a clock — the enclosing device decides whether an operation
    is on the critical path (foreground read) or background (GC).
    """

    def __init__(
        self,
        geometry: FlashGeometry = FlashGeometry(),
        obs: Optional[Observability] = None,
        metric_prefix: str = "nand",
    ) -> None:
        self.geometry = geometry
        self.blocks = [Block(geometry, b) for b in range(geometry.total_blocks)]
        self.reads = 0
        self.programs = 0
        self.erases = 0
        self._free_blocks = geometry.total_blocks
        self.obs = obs if obs is not None else Observability.disabled()
        # Metric names precomputed so per-page paths never format strings.
        self._m_reads = f"{metric_prefix}.reads"
        self._m_programs = f"{metric_prefix}.programs"
        self._m_erases = f"{metric_prefix}.erases"
        self._m_ecc = f"{metric_prefix}.ecc_corrected_reads"
        self._m_uncorrectable = f"{metric_prefix}.uncorrectable_reads"
        self._m_free_blocks = f"{metric_prefix}.free_blocks"
        # Armed read faults (fault injection): pending fault count, ECC
        # re-read budget for correctable faults, persistence flag for
        # uncorrectable ones.
        self._fault_correctable = True
        self._fault_count = 0
        self._fault_retries = 0
        self._fault_persistent = False
        self.ecc_corrected_reads = 0
        self.uncorrectable_reads = 0
        # Armed silent corruptions: reads that return flipped bits with
        # no error completion.  Tracked separately from the loud read
        # faults — they cost nothing and raise nothing here; only the
        # end-to-end integrity layer can notice the damage.
        self._silent_count = 0
        self._silent_persistent = False
        self.silent_corrupted_reads = 0

    # --- fault injection hooks -------------------------------------------

    def arm_read_fault(
        self,
        correctable: bool,
        retries: int = 3,
        count: int = 1,
        persistent: bool = False,
    ) -> None:
        """Arm the next ``count`` reads to fail.

        Correctable faults cost ``retries`` extra page-read latencies
        (ECC re-reads) and then succeed; uncorrectable ones raise
        :class:`~repro.errors.UncorrectableMediaError`.  A *persistent*
        uncorrectable fault is not consumed by failing reads — replays
        keep failing until :meth:`clear_read_faults` (the executor then
        falls back to the host).
        """
        if retries < 1:
            raise FlashError(f"retries must be at least 1, got {retries}")
        if count < 1:
            raise FlashError(f"count must be at least 1, got {count}")
        self._fault_correctable = correctable
        self._fault_count = count
        self._fault_retries = retries
        self._fault_persistent = persistent and not correctable

    def clear_read_faults(self) -> None:
        """Disarm any pending read fault (recovery hook)."""
        self._fault_count = 0
        self._fault_persistent = False

    def arm_silent_corruption(self, count: int = 1, persistent: bool = False) -> None:
        """Arm the next ``count`` reads to return silently flipped bits.

        Unlike :meth:`arm_read_fault` nothing errors and nothing slows
        down — the read completes normally with wrong data.  A
        *persistent* corruption is not consumed: every re-read of the
        damaged page keeps returning garbage until
        :meth:`clear_silent_corruption` (the executor's host fallback
        then reads the host-side replica instead).
        """
        if count < 1:
            raise FlashError(f"count must be at least 1, got {count}")
        self._silent_count += count
        self._silent_persistent = persistent

    def clear_silent_corruption(self) -> None:
        """Disarm any pending silent corruption (recovery hook)."""
        self._silent_count = 0
        self._silent_persistent = False

    def consume_silent_corruption(self) -> bool:
        """True when the current read streams silently corrupted bits.

        Charges nothing and raises nothing — that is the point.  The
        armed count decrements unless the corruption is persistent.
        """
        if self._silent_count <= 0:
            return False
        if not self._silent_persistent:
            self._silent_count -= 1
        self.silent_corrupted_reads += 1
        return True

    @property
    def has_persistent_fault(self) -> bool:
        """True while an armed uncorrectable fault survives replays."""
        return self._fault_persistent and self._fault_count > 0

    def consume_read_fault(self) -> float:
        """Apply one armed read fault, if any, to the current read.

        Returns extra latency (seconds) for a correctable fault, or 0.0
        when nothing is armed.  Raises
        :class:`~repro.errors.UncorrectableMediaError` for an armed
        uncorrectable fault.
        """
        if self._fault_count <= 0:
            return 0.0
        if self._fault_correctable:
            self._fault_count -= 1
            self.ecc_corrected_reads += 1
            if self.obs.enabled:
                self.obs.metrics.counter(self._m_ecc).inc()
            return self._fault_retries * self.geometry.read_latency_s
        if not self._fault_persistent:
            self._fault_count -= 1
        self.uncorrectable_reads += 1
        if self.obs.enabled:
            self.obs.metrics.counter(self._m_uncorrectable).inc()
        raise UncorrectableMediaError(
            "NAND read failed beyond the ECC correction capability"
        )

    # --- addressing -----------------------------------------------------

    def split_address(self, page_addr: int) -> tuple[int, int]:
        """Return (block index, page index within block) for a flat address."""
        if not 0 <= page_addr < self.geometry.total_pages:
            raise FlashError(
                f"page address {page_addr} out of range [0, {self.geometry.total_pages})"
            )
        return divmod(page_addr, self.geometry.pages_per_block)

    def page_state(self, page_addr: int) -> PageState:
        block_idx, page_idx = self.split_address(page_addr)
        return self.blocks[block_idx].pages[page_idx]

    def channel_of(self, page_addr: int) -> int:
        block_idx, _ = self.split_address(page_addr)
        return block_idx % self.geometry.channels

    # --- operations -------------------------------------------------------

    def read_page(self, page_addr: int) -> float:
        """Read one page; returns the latency cost in seconds.

        An armed read fault applies here: a correctable one adds ECC
        re-read latency to the returned cost, an uncorrectable one
        raises before any cost is charged.
        """
        if self.page_state(page_addr) is not PageState.VALID:
            raise FlashError(f"page {page_addr} is not valid; cannot read")
        extra = self.consume_read_fault()
        self.reads += 1
        if self.obs.enabled:
            self.obs.metrics.counter(self._m_reads).inc()
        return self.geometry.read_latency_s + extra

    def program_next_page(self, block_idx: int) -> tuple[int, float]:
        """Program the next free page of a block in sequence.

        Returns (flat page address, latency).  NAND forbids in-place
        update and out-of-order programming within a block.
        """
        if not 0 <= block_idx < self.geometry.total_blocks:
            raise FlashError(f"block {block_idx} out of range")
        block = self.blocks[block_idx]
        if block.is_full:
            raise FlashError(f"block {block_idx} has no free pages")
        page_idx = block.write_pointer
        if block.pages[page_idx] is not PageState.FREE:
            raise FlashError(
                f"block {block_idx} page {page_idx} not erased; cannot program"
            )
        if block.write_pointer == 0:
            self._free_blocks -= 1
        block.pages[page_idx] = PageState.VALID
        block.valid_pages += 1
        block.write_pointer += 1
        self.programs += 1
        if self.obs.enabled:
            self.obs.metrics.counter(self._m_programs).inc()
            self.obs.metrics.gauge(self._m_free_blocks).set(self._free_blocks)
        page_addr = block_idx * self.geometry.pages_per_block + page_idx
        return page_addr, self.geometry.program_latency_s

    def invalidate_page(self, page_addr: int) -> None:
        """Mark a page stale after its logical data moved elsewhere."""
        block_idx, page_idx = self.split_address(page_addr)
        block = self.blocks[block_idx]
        if block.pages[page_idx] is not PageState.VALID:
            raise FlashError(f"page {page_addr} is not valid; cannot invalidate")
        block.pages[page_idx] = PageState.INVALID
        block.valid_pages -= 1
        block.invalid_pages += 1

    def erase_block(self, block_idx: int) -> float:
        """Erase a block; all its pages must already be stale or free."""
        if not 0 <= block_idx < self.geometry.total_blocks:
            raise FlashError(f"block {block_idx} out of range")
        block = self.blocks[block_idx]
        if block.valid_pages:
            raise FlashError(
                f"block {block_idx} still holds {block.valid_pages} valid pages"
            )
        if block.write_pointer > 0:
            self._free_blocks += 1
        block.pages = [PageState.FREE] * self.geometry.pages_per_block
        block.write_pointer = 0
        block.valid_pages = 0
        block.invalid_pages = 0
        block.erase_count += 1
        self.erases += 1
        if self.obs.enabled:
            self.obs.metrics.counter(self._m_erases).inc()
            self.obs.metrics.gauge(self._m_free_blocks).set(self._free_blocks)
        return self.geometry.erase_latency_s

    # --- aggregate state ---------------------------------------------------

    @property
    def free_blocks(self) -> int:
        """Fully erased blocks (tracked incrementally; GC polls this)."""
        return self._free_blocks

    @property
    def valid_pages(self) -> int:
        return sum(b.valid_pages for b in self.blocks)

    def utilisation(self) -> float:
        """Fraction of pages currently holding live data."""
        return self.valid_pages / self.geometry.total_pages
