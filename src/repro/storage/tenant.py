"""Co-tenant background load on the CSE.

The paper's system-dynamics argument (§II-B3) names two cycle thieves:
other applications sharing the device, and the device's own management
work.  :class:`BackgroundLoad` models the first as a periodic duty
cycle — for ``busy_fraction`` of every ``period_s`` the co-tenant holds
the engine, throttling foreground availability to ``available_during``.
The load drives itself through simulator events, so it composes with
anything else the experiment schedules.

GC-induced contention (the second thief) lives in
:meth:`repro.storage.csd.ComputationalStorageDevice.inject_write_burst`.
"""

from __future__ import annotations

from ..errors import HardwareError
from .cse import ComputationalStorageEngine


class BackgroundLoad:
    """A periodic co-tenant occupying the CSE."""

    def __init__(
        self,
        cse: ComputationalStorageEngine,
        period_s: float,
        busy_fraction: float,
        available_during: float = 0.2,
        start_at: float = 0.0,
    ) -> None:
        if period_s <= 0:
            raise HardwareError(f"period must be positive, got {period_s}")
        if not 0 < busy_fraction < 1:
            raise HardwareError(
                f"busy_fraction must lie in (0, 1), got {busy_fraction}"
            )
        if not 0 < available_during <= 1:
            raise HardwareError(
                f"available_during must lie in (0, 1], got {available_during}"
            )
        if start_at < 0:
            raise HardwareError(f"start_at must be non-negative, got {start_at}")
        self.cse = cse
        self.period_s = float(period_s)
        self.busy_fraction = float(busy_fraction)
        self.available_during = float(available_during)
        self.start_at = float(start_at)
        self.bursts_started = 0
        self._running = False
        self._stopped = False

    @property
    def mean_availability(self) -> float:
        """Long-run average availability the foreground task sees."""
        busy = self.busy_fraction * self.available_during
        idle = 1.0 - self.busy_fraction
        return busy + idle

    def start(self) -> "BackgroundLoad":
        """Arm the load; the first burst begins at ``start_at``."""
        if self._running:
            raise HardwareError("background load already started")
        self._running = True
        self.cse.simulator.schedule_at(
            max(self.start_at, self.cse.simulator.now),
            self._begin_burst,
            label="tenant-burst-begin",
        )
        return self

    def stop(self) -> None:
        """Let the current burst finish and schedule nothing further."""
        self._stopped = True

    def _begin_burst(self) -> None:
        if self._stopped:
            return
        self.bursts_started += 1
        self.cse.set_availability(self.available_during)
        self.cse.simulator.schedule_after(
            self.period_s * self.busy_fraction,
            self._end_burst,
            label="tenant-burst-end",
        )

    def _end_burst(self) -> None:
        self.cse.set_availability(1.0)
        if self._stopped:
            return
        self.cse.simulator.schedule_after(
            self.period_s * (1.0 - self.busy_fraction),
            self._begin_burst,
            label="tenant-burst-begin",
        )
