"""The assembled computational storage device.

Wires together the pieces of Figure 1: NAND flash arrays behind a
page-mapping FTL, device DRAM exposed through a PCIe BAR, an NVMe queue
pair toward the host, the internal interconnect, and the CSE.  The
device offers two data paths:

* the **host path** — the host reads stored data over the (shared,
  narrow) system interconnect, and
* the **internal path** — the CSE streams the same data over the
  in-device bus at the richer internal bandwidth (9 GB/s measured in
  the paper's prototype).

Bulk streaming bandwidth is modelled by the internal
:class:`~repro.hw.interconnect.Link`; the :class:`FlashArray`/FTL pair
additionally model page-level state so garbage collection emerges as a
real contention source rather than a synthetic knob.
"""

from __future__ import annotations

from ..config import SystemConfig
from ..errors import StorageError
from ..hw.interconnect import Link
from ..memory.address_space import SharedAddressSpace
from ..sim import Simulator
from .bar import BarWindow
from .cse import ComputationalStorageEngine
from .ftl import PageMappingFTL
from .nand import FlashArray, FlashGeometry
from .nvme import QueuePair


class ComputationalStorageDevice:
    """A CSD: storage plus a near-data compute engine."""

    def __init__(
        self,
        config: SystemConfig,
        simulator: Simulator,
        space: SharedAddressSpace,
        name: str = "csd",
        obs=None,
    ) -> None:
        self.name = name
        self.config = config
        self.simulator = simulator
        self.obs = obs if obs is not None else simulator.obs
        geometry = FlashGeometry(
            channels=config.nand_channels,
            page_bytes=config.nand_page_bytes,
            pages_per_block=config.nand_pages_per_block,
            read_latency_s=config.nand_read_latency_s,
            program_latency_s=config.nand_program_latency_s,
            erase_latency_s=config.nand_erase_latency_s,
        )
        self.flash = FlashArray(
            geometry, obs=self.obs, metric_prefix=f"{name}.nand",
        )
        self.ftl = PageMappingFTL(
            self.flash, obs=self.obs, metric_prefix=f"{name}.ftl",
        )
        self.cse = ComputationalStorageEngine(
            ips=config.cse_ips,
            simulator=simulator,
            cores=config.cse_cores,
            name=name,
            obs=self.obs,
        )
        self.internal_link = Link(
            name=f"{name}.internal",
            bandwidth=config.bw_internal,
            clock=simulator.clock,
            obs=self.obs,
            component="nand",
        )
        self.bar = BarWindow(
            device_name=name,
            size=int(config.device_dram_bytes),
            space=space,
        )
        self.queue_pair = QueuePair.create(name=f"{name}.qp")
        self._stored_bytes: dict[str, float] = {}
        #: Firmware generation: bumped by every reset.  Faults armed
        #: against an earlier generation are stale and must be dropped
        #: by the injector, not fired into the reborn device.
        self.generation = 0

    @property
    def checkpoints(self):
        """The BAR-resident line-boundary checkpoint area."""
        return self.bar.checkpoints

    # --- dataset residency -----------------------------------------------

    def store_dataset(self, dataset_name: str, nbytes: float) -> None:
        """Declare that a named dataset resides on this device's flash."""
        if nbytes <= 0:
            raise StorageError(f"dataset {dataset_name!r} needs positive size")
        total = sum(self._stored_bytes.values()) + nbytes
        if total > self.config.nand_capacity_bytes:
            raise StorageError(
                f"device {self.name!r} capacity exceeded: "
                f"{total} > {self.config.nand_capacity_bytes}"
            )
        self._stored_bytes[dataset_name] = float(nbytes)

    def holds_dataset(self, dataset_name: str) -> bool:
        return dataset_name in self._stored_bytes

    def dataset_bytes(self, dataset_name: str) -> float:
        if dataset_name not in self._stored_bytes:
            raise StorageError(f"dataset {dataset_name!r} is not stored on {self.name!r}")
        return self._stored_bytes[dataset_name]

    # --- data paths --------------------------------------------------------

    def internal_read(self, nbytes: float) -> float:
        """Stream ``nbytes`` from NAND to the CSE over the internal bus.

        Advances the clock and returns the elapsed time.  An armed NAND
        read fault applies to the stream: correctable faults add ECC
        re-read latency, uncorrectable ones raise before the transfer.
        """
        extra = self.consume_media_fault()
        return self.internal_link.transfer(nbytes) + extra

    def consume_media_fault(self) -> float:
        """Apply any armed NAND read fault to the next streamed access.

        Charges ECC re-read latency to the clock and returns it, or
        raises :class:`~repro.errors.UncorrectableMediaError`.
        """
        extra = self.flash.consume_read_fault()
        if extra > 0:
            self.simulator.clock.advance(extra, component="nand")
        return extra

    def internal_read_time(self, nbytes: float) -> float:
        """Time the internal path would take, without advancing the clock."""
        return self.internal_link.transfer_time(nbytes)

    # --- crash / reset (fault injection) ----------------------------------

    def crash_cse(self) -> None:
        """Crash the in-device engine; in-flight queue entries are lost."""
        self.cse.crash()

    def reset_cse(self) -> None:
        """Firmware reset: revive the engine and clear the queue pair.

        Anything in flight at crash time stays lost — the host's
        deadline/retry machinery is what recovers the work.  Media
        faults are unaffected: an unreadable NAND page stays unreadable
        across an engine reset.  Device DRAM — including the BAR
        checkpoint area — also survives: the firmware only restarts the
        engine, which is what makes a BAR-resident resume point useful.
        """
        self.cse.reset()
        self.queue_pair.clear()
        self.generation += 1

    @property
    def healthy(self) -> bool:
        """True when the engine can accept and complete work."""
        return not self.cse.crashed and not self.flash.has_persistent_fault

    # --- garbage-collection contention ----------------------------------------

    def inject_write_burst(self, pages: int) -> float:
        """Issue a burst of logical writes, possibly triggering GC.

        Returns the GC busy time the burst caused, and throttles the CSE
        for that period by scheduling an availability dip: while the
        controller relocates pages it steals engine cycles (paper
        §II-B3, contention "from the storage management workloads").
        """
        if pages <= 0:
            raise StorageError(f"write burst needs a positive page count, got {pages}")
        gc_before = self.ftl.gc_busy_seconds
        lpn_span = min(self.ftl.logical_pages, max(pages, 1))
        for i in range(pages):
            self.ftl.write(i % lpn_span)
        gc_time = self.ftl.gc_busy_seconds - gc_before
        if gc_time > 0:
            now = self.simulator.now
            original = self.cse.availability
            self.cse.set_availability(max(0.05, original * 0.5))
            self.simulator.schedule_at(
                now + gc_time,
                lambda: self.cse.set_availability(original),
                label="gc-contention-end",
            )
        return gc_time
