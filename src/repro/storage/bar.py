"""PCIe BAR window: device memory exposed into the host address space.

CSDs supporting ActivePy declare part of their DRAM in a PCIe base
address register so the OS can map it into any program's virtual memory
(paper §III-C0a).  The same window carries generated CSD binaries: the
host "emits the generated CSD binary into the target device memory
location without additional commands or protocols" (§III-C0d).
"""

from __future__ import annotations

from typing import Optional

from ..errors import StorageError
from ..memory.address_space import MemoryRegion, SharedAddressSpace

#: Bytes reserved per checkpoint slot in the BAR window.
CHECKPOINT_SLOT_BYTES = 4096

#: Pattern XOR-ed over the unwritten tail of a torn checkpoint record —
#: the DMA scribble a power event leaves behind.
_TORN_SCRAMBLE = 0xA5

#: Pattern XOR-ed over the tail of a *committed* record by silent
#: bitrot — retention loss in device DRAM, after the CRC was written.
_BITROT_SCRAMBLE = 0x3C

#: Bytes at the end of a record image the bitrot flips: enough to cover
#: the cursor and the stored CRC, so a rotted record decodes (the header
#: is intact) but carries a garbage resume point.
_BITROT_TAIL_BYTES = 12


class CheckpointArea:
    """Two checkpoint slots in device DRAM, reachable through the BAR.

    The runtime's checkpoint protocol (:mod:`repro.runtime.checkpoint`)
    alternates writes between the slots so the last *committed* record
    survives any single torn write.  The area itself is deliberately
    dumb — it stores whatever bytes it is handed — because the torn
    write is a *memory* fault: the device loses power or the engine is
    reset mid-DMA, the head of the record lands, and the tail is left
    scrambled.  CRC validation on the read side is the runtime's job.

    The area lives in device DRAM, not engine state: it survives a CSE
    crash and firmware reset, which is exactly why a resume point kept
    here is recoverable when the engine's own state is not.
    """

    def __init__(self, device_name: str, region: MemoryRegion) -> None:
        self.device_name = device_name
        self.slot_addresses = tuple(
            region.allocator.allocate(CHECKPOINT_SLOT_BYTES).address
            for _ in range(2)
        )
        self._slots: list[Optional[bytes]] = [None, None]
        #: Device-side monotone record version; survives runs on the
        #: same machine so stale records are never mistaken for new.
        self.next_generation = 0
        self.writes = 0
        self.torn_writes = 0
        self._torn_armed = 0
        self.bitrot_events = 0

    # --- fault injection ---------------------------------------------------

    def arm_torn_write(self, count: int = 1) -> None:
        """The next ``count`` checkpoint writes are torn mid-DMA."""
        if count < 1:
            raise StorageError(f"torn-write count must be >= 1, got {count}")
        self._torn_armed += count

    @property
    def torn_write_armed(self) -> bool:
        return self._torn_armed > 0

    def rot_committed(self, count: int = 1) -> int:
        """Decay up to ``count`` committed records, newest first.

        Models retention loss in device DRAM: the record was written
        cleanly — CRC and all — and the bits flipped *afterwards*.  The
        tail (cursor + stored CRC) is scrambled, so CRC validation on
        the read side rejects the record; a runtime configured to skip
        validation trusts the garbage cursor verbatim.  Returns how
        many records actually decayed (0 when the area is empty).
        """
        if count < 1:
            raise StorageError(f"bitrot count must be >= 1, got {count}")
        newest = (self.next_generation - 1) % 2
        rotted = 0
        for slot in (newest, 1 - newest):
            if rotted >= count:
                break
            blob = self._slots[slot]
            if not blob:
                continue
            keep = max(0, len(blob) - _BITROT_TAIL_BYTES)
            self._slots[slot] = blob[:keep] + bytes(
                b ^ _BITROT_SCRAMBLE for b in blob[keep:]
            )
            self.bitrot_events += 1
            rotted += 1
        return rotted

    # --- slot access --------------------------------------------------------

    def write(self, slot: int, payload: bytes, tear_offset: int) -> bool:
        """Store a record image into ``slot``.

        Returns True for a clean write.  If a torn-write fault is
        armed, only the first ``tear_offset`` bytes land; the rest of
        the record image is scrambled, and False is returned (callers
        use it only for accounting — the *runtime* never sees this
        flag, it must discover the tear through CRC validation).
        """
        if slot not in (0, 1):
            raise StorageError(f"checkpoint slot must be 0 or 1, got {slot}")
        if len(payload) > CHECKPOINT_SLOT_BYTES:
            raise StorageError(
                f"checkpoint record of {len(payload)} bytes exceeds the "
                f"{CHECKPOINT_SLOT_BYTES}-byte slot"
            )
        self.writes += 1
        if self._torn_armed > 0:
            self._torn_armed -= 1
            self.torn_writes += 1
            tear = max(0, min(int(tear_offset), len(payload)))
            scrambled = bytes(b ^ _TORN_SCRAMBLE for b in payload[tear:])
            self._slots[slot] = payload[:tear] + scrambled
            return False
        self._slots[slot] = bytes(payload)
        return True

    def read(self, slot: int) -> Optional[bytes]:
        if slot not in (0, 1):
            raise StorageError(f"checkpoint slot must be 0 or 1, got {slot}")
        return self._slots[slot]


class BarWindow:
    """A mapped view of device DRAM inside the shared address space."""

    def __init__(
        self,
        device_name: str,
        size: int,
        space: SharedAddressSpace,
    ) -> None:
        if size <= 0:
            raise StorageError(f"BAR window for {device_name!r} needs positive size")
        self.device_name = device_name
        self.region: MemoryRegion = space.map_region(
            name=f"{device_name}.bar", size=size, location=device_name
        )
        self._binaries: dict[str, int] = {}
        self.bytes_written = 0
        #: Double-buffered line-boundary resume records (paper §III-D:
        #: migration resumes "at a Python-line boundary from shared
        #: memory"); see :mod:`repro.runtime.checkpoint`.
        self.checkpoints = CheckpointArea(device_name, self.region)

    @property
    def base(self) -> int:
        return self.region.base

    @property
    def size(self) -> int:
        return self.region.size

    def install_binary(self, name: str, nbytes: int) -> int:
        """Copy a generated binary into device memory via the window.

        Returns the device address the binary landed at.  Reinstalling
        under the same name replaces the old image (code regeneration
        after migration does this).
        """
        if nbytes <= 0:
            raise StorageError(f"binary {name!r} must have positive size")
        old_address = self._binaries.get(name)
        if old_address is not None:
            del self._binaries[name]
        allocation = self.region.allocator.allocate(int(nbytes))
        self._binaries[name] = allocation.address
        self.bytes_written += nbytes
        return allocation.address

    def binary_address(self, name: str) -> Optional[int]:
        """Device address of an installed binary, or None."""
        return self._binaries.get(name)

    @property
    def installed_binaries(self) -> tuple[str, ...]:
        return tuple(self._binaries)
