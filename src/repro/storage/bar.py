"""PCIe BAR window: device memory exposed into the host address space.

CSDs supporting ActivePy declare part of their DRAM in a PCIe base
address register so the OS can map it into any program's virtual memory
(paper §III-C0a).  The same window carries generated CSD binaries: the
host "emits the generated CSD binary into the target device memory
location without additional commands or protocols" (§III-C0d).
"""

from __future__ import annotations

from typing import Optional

from ..errors import StorageError
from ..memory.address_space import MemoryRegion, SharedAddressSpace


class BarWindow:
    """A mapped view of device DRAM inside the shared address space."""

    def __init__(
        self,
        device_name: str,
        size: int,
        space: SharedAddressSpace,
    ) -> None:
        if size <= 0:
            raise StorageError(f"BAR window for {device_name!r} needs positive size")
        self.device_name = device_name
        self.region: MemoryRegion = space.map_region(
            name=f"{device_name}.bar", size=size, location=device_name
        )
        self._binaries: dict[str, int] = {}
        self.bytes_written = 0

    @property
    def base(self) -> int:
        return self.region.base

    @property
    def size(self) -> int:
        return self.region.size

    def install_binary(self, name: str, nbytes: int) -> int:
        """Copy a generated binary into device memory via the window.

        Returns the device address the binary landed at.  Reinstalling
        under the same name replaces the old image (code regeneration
        after migration does this).
        """
        if nbytes <= 0:
            raise StorageError(f"binary {name!r} must have positive size")
        old_address = self._binaries.get(name)
        if old_address is not None:
            del self._binaries[name]
        allocation = self.region.allocator.allocate(int(nbytes))
        self._binaries[name] = allocation.address
        self.bytes_written += nbytes
        return allocation.address

    def binary_address(self, name: str) -> Optional[int]:
        """Device address of an installed binary, or None."""
        return self._binaries.get(name)

    @property
    def installed_binaries(self) -> tuple[str, ...]:
        return tuple(self._binaries)
