"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  Subsystems define their
own narrower types below.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A :class:`repro.config.SystemConfig` value is invalid."""


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly."""


class HardwareError(ReproError):
    """A hardware model (compute unit, link) was used incorrectly."""


class StorageError(ReproError):
    """A storage-device model rejected an operation."""


class FlashError(StorageError):
    """A NAND-level rule was violated (e.g. programming a dirty page)."""


class FaultError(ReproError):
    """An injected fault surfaced to the runtime (see :mod:`repro.faults`)."""


class UncorrectableMediaError(FaultError, FlashError):
    """A NAND read failed beyond the ECC correction capability."""


class IntegrityError(FaultError):
    """An end-to-end checksum caught silently corrupted data.

    Raised by the verifiers in :mod:`repro.integrity` when a content
    digest computed at the producer does not match the bytes seen at the
    consumer.  It is a :class:`FaultError` so the executor's existing
    recovery machinery (chunk replay, host fallback) handles it.
    """


class CseCrashError(FaultError):
    """The computational storage engine crashed and lost its task state."""


class DeadlineError(FaultError):
    """A command exceeded its completion deadline."""


class DeviceLostError(FaultError):
    """The device stopped responding and was declared dead after retries."""


class AddressError(ReproError):
    """A shared-address-space access fell outside any mapped region."""


class AllocationError(AddressError):
    """The allocator could not satisfy a request."""


class ProgramError(ReproError):
    """A :class:`repro.lang.program.Program` is malformed."""


class DatasetError(ReproError):
    """A dataset cannot be built, sampled, or scaled as requested."""


class SamplingError(ReproError):
    """The sampling phase could not collect usable statistics."""


class FittingError(ReproError):
    """Curve fitting was given unusable observations."""


class PlanningError(ReproError):
    """Algorithm 1 was given inconsistent line estimates."""


class CodegenError(ReproError):
    """Code generation or binary placement failed."""


class DispatchError(ReproError):
    """The call/completion queue protocol was violated."""


class MigrationError(ReproError):
    """A task checkpoint/restore could not be performed."""


class CheckpointError(ReproError):
    """A line-boundary checkpoint record is malformed or misused."""


class WorkloadError(ReproError):
    """A workload definition or its dataset is inconsistent."""


class ChaosError(ReproError):
    """A chaos campaign or shrink request is malformed."""


class FleetError(ReproError):
    """A rack-scale fleet (:mod:`repro.fleet`) rule was violated.

    Raised for malformed fleet configurations and for jobs the fleet
    could not finish within policy — a retry budget exhausted after
    repeated device losses, or a queue drained with no live device
    left.  A job terminated this way is *shed with an error*: the
    failure is typed and attached to its outcome, never silent.
    """


class AdmissionError(FleetError):
    """The fleet front-end refused or shed a job, with a stated reason.

    Per-tenant admission control (token-bucket rate limits, bounded
    queues, overload shedding) rejects work instead of collapsing under
    it.  Every rejection carries the policy that fired — rate-limited,
    queue-full, or overload-shed — so a shed job's outcome names
    exactly why it never ran.
    """


class TenantIsolationError(FleetError):
    """A tenant's faults perturbed another tenant's results.

    The fleet guarantees that faults injected into tenant A's jobs
    never change the run signature of tenant B's jobs.  The chaos
    harness checks this invariant after every fleet run; a violation
    means fault state leaked across the tenant boundary (the planted
    ``--no-isolation`` bug is exactly such a leak).
    """


class ObservabilityError(ReproError):
    """A metrics instrument or trace exporter was used incorrectly."""
