"""Datasets: stored inputs with scaled sampling.

A dataset names data resident on the CSD's flash.  At full scale it is
*never materialised* — the simulator only needs its size — but the
sampling phase materialises real NumPy payloads at the paper's scaling
factors (2^-10 … 2^-7) by calling the dataset's ``builder``.

The builder receives the sample record count and the full record count,
so it can model **sampling bias**: ActivePy's heuristic takes a prefix
of the stored records, and for skewed data (the sparse matrices behind
PageRank/SparseMV) a prefix is not statistically representative.  That
bias is the paper's explanation for the CSR volume misprediction (§V),
and it emerges here from real data rather than an injected error term.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from ..errors import DatasetError

#: Builders produce the real payload for a sample: (n_sample, n_full) -> arrays.
PayloadBuilder = Callable[[int, int], Dict[str, Any]]

#: Hard cap on materialised sample payloads; full-scale datasets are
#: simulated, never built.
_MAX_MATERIALISED_RECORDS = 50_000_000


class Dataset:
    """A named, sized, sampleable stored input.

    Parameters
    ----------
    name:
        Identifier, also used as the flash-resident dataset name.
    n_records:
        Record count at this dataset's scale.
    record_bytes:
        Average stored bytes per record; ``raw_bytes`` is the product.
    builder:
        Callable materialising real arrays for ``n`` records out of a
        full population of ``full_records``.
    full_records:
        Population size this dataset was sampled from; equals
        ``n_records`` for an unsampled dataset.
    """

    def __init__(
        self,
        name: str,
        n_records: int,
        record_bytes: float,
        builder: PayloadBuilder,
        full_records: Optional[int] = None,
    ) -> None:
        if n_records <= 0:
            raise DatasetError(f"dataset {name!r} needs positive n_records")
        if record_bytes <= 0:
            raise DatasetError(f"dataset {name!r} needs positive record_bytes")
        self.name = name
        self.n_records = int(n_records)
        self.record_bytes = float(record_bytes)
        self.builder = builder
        self.full_records = int(full_records) if full_records is not None else int(n_records)
        if self.full_records < self.n_records:
            raise DatasetError(
                f"dataset {name!r}: full_records ({self.full_records}) cannot be "
                f"smaller than n_records ({self.n_records})"
            )
        self._payload: Optional[Dict[str, Any]] = None

    # --- size -----------------------------------------------------------

    @property
    def raw_bytes(self) -> float:
        """Stored size of this dataset at its scale."""
        return self.n_records * self.record_bytes

    @property
    def scale_fraction(self) -> float:
        """This dataset's size relative to the full population."""
        return self.n_records / self.full_records

    @property
    def is_sample(self) -> bool:
        return self.n_records < self.full_records

    # --- sampling -----------------------------------------------------------

    def sample(self, factor: float) -> "Dataset":
        """Create a scaled-down sample (paper §III-A).

        ``factor`` is the paper's scaling factor F; the sample holds the
        first ``round(full_records * factor)`` records of the stored
        population (a heuristic prefix selection).
        """
        if not 0 < factor < 1:
            raise DatasetError(f"sampling factor must lie in (0, 1), got {factor}")
        n_sample = max(1, round(self.full_records * factor))
        if n_sample >= self.n_records:
            raise DatasetError(
                f"sample of {n_sample} records is not smaller than the "
                f"dataset's {self.n_records} records"
            )
        return Dataset(
            name=self.name,
            n_records=n_sample,
            record_bytes=self.record_bytes,
            builder=self.builder,
            full_records=self.full_records,
        )

    # --- materialisation ----------------------------------------------------

    @property
    def payload(self) -> Dict[str, Any]:
        """Real arrays for this dataset, built lazily and cached."""
        if self._payload is None:
            if self.n_records > _MAX_MATERIALISED_RECORDS:
                raise DatasetError(
                    f"refusing to materialise {self.n_records} records of "
                    f"{self.name!r}; only samples are ever built for real"
                )
            self._payload = self.builder(self.n_records, self.full_records)
            if not isinstance(self._payload, dict):
                raise DatasetError(
                    f"builder for {self.name!r} must return a dict of arrays"
                )
        return self._payload

    def __repr__(self) -> str:
        return (
            f"Dataset(name={self.name!r}, n_records={self.n_records}, "
            f"raw_bytes={self.raw_bytes:.3g})"
        )
