"""Static and dynamic validation of program definitions.

:func:`validate_program` is the pre-flight check workload authors run
before trusting a new program definition: it verifies the cost laws are
sane (non-negative, non-decreasing over scale), actually executes the
kernels on a small probe sample, and compares measured volumes against
the declared laws — the same honesty contract
`tests/test_workloads.py` enforces for the built-in suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import ProgramError
from .dataset import Dataset
from .program import Program

#: Scales probed for monotonicity of the cost laws.
_PROBE_SCALES = (1_000.0, 10_000.0, 100_000.0, 1_000_000.0)


@dataclass
class ValidationIssue:
    line: str
    severity: str  # "error" or "warning"
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.line}: {self.message}"


@dataclass
class ValidationReport:
    program_name: str
    issues: List[ValidationIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(issue.severity == "error" for issue in self.issues)

    @property
    def errors(self) -> List[ValidationIssue]:
        return [issue for issue in self.issues if issue.severity == "error"]

    @property
    def warnings(self) -> List[ValidationIssue]:
        return [issue for issue in self.issues if issue.severity == "warning"]

    def render(self) -> str:
        if not self.issues:
            return f"{self.program_name}: ok"
        return "\n".join(
            [f"{self.program_name}: {len(self.errors)} error(s), "
             f"{len(self.warnings)} warning(s)"]
            + [f"  {issue}" for issue in self.issues]
        )


def validate_program(
    program: Program,
    dataset: Optional[Dataset] = None,
    probe_factor: float = 2**-10,
    volume_tolerance: float = 0.35,
) -> ValidationReport:
    """Check a program's cost laws and, with a dataset, its kernels.

    Static checks (always): every cost law must be non-negative and
    non-decreasing across probe scales.  Dynamic checks (with a
    dataset): run the kernels on a ``probe_factor`` sample, flag kernel
    failures as errors and measured-vs-declared output mismatches
    beyond ``volume_tolerance`` as warnings (the sparse workloads'
    sampling bias is legitimate — that is the paper's §V — so a
    mismatch is a prompt to look, not necessarily a bug).
    """
    report = ValidationReport(program_name=program.name)

    for statement in program:
        for label, law in (
            ("instructions", statement.instructions),
            ("output_bytes", statement.output_bytes),
            ("storage_bytes", statement.storage_bytes),
        ):
            values = []
            for scale in _PROBE_SCALES:
                try:
                    value = law(scale)
                except Exception as exc:
                    report.issues.append(ValidationIssue(
                        statement.name, "error",
                        f"{label} raised at n={scale:g}: {exc}",
                    ))
                    break
                if value < 0:
                    report.issues.append(ValidationIssue(
                        statement.name, "error",
                        f"{label} is negative at n={scale:g} ({value:g})",
                    ))
                    break
                values.append(value)
            else:
                if any(b < a - 1e-9 for a, b in zip(values, values[1:])):
                    report.issues.append(ValidationIssue(
                        statement.name, "error",
                        f"{label} decreases with scale ({values})",
                    ))

    if dataset is not None:
        _dynamic_checks(program, dataset, probe_factor, volume_tolerance, report)
    return report


def _dynamic_checks(
    program: Program,
    dataset: Dataset,
    probe_factor: float,
    volume_tolerance: float,
    report: ValidationReport,
) -> None:
    from ..runtime.profiler import payload_nbytes

    try:
        sample = dataset.sample(probe_factor)
    except Exception as exc:
        report.issues.append(ValidationIssue(
            "(dataset)", "error", f"cannot draw a probe sample: {exc}",
        ))
        return
    n = sample.n_records
    try:
        payload = sample.payload
    except Exception as exc:
        report.issues.append(ValidationIssue(
            "(dataset)", "error", f"builder failed at n={n}: {exc}",
        ))
        return

    for statement in program:
        try:
            payload = statement.kernel(payload)
        except Exception as exc:
            report.issues.append(ValidationIssue(
                statement.name, "error", f"kernel failed on probe: {exc}",
            ))
            return
        if not isinstance(payload, dict):
            report.issues.append(ValidationIssue(
                statement.name, "error",
                f"kernel returned {type(payload).__name__}, expected dict",
            ))
            return
        declared = statement.output_bytes(n)
        measured = payload_nbytes(payload)
        reference = max(declared, 1.0)
        if abs(measured - declared) > volume_tolerance * reference + 1024:
            report.issues.append(ValidationIssue(
                statement.name, "warning",
                f"measured output {measured:.4g} B deviates from declared "
                f"{declared:.4g} B at n={n} (sampling bias, or a stale law?)",
            ))
