"""Programs and statements.

A :class:`Statement` models one line of an unannotated Python program —
the paper's unit of offload.  It carries two faces:

* a **functional face**: ``kernel``, a real NumPy implementation that
  transforms a payload dict.  The sampling phase executes it on scaled
  sample inputs, and tests/examples execute whole programs for real.
* a **cost face**: ground-truth callables mapping the executed record
  count ``n`` to instruction count, output bytes, and bytes streamed
  from storage.  *Only the simulator reads these.*  The ActivePy
  runtime must work from profiler observations alone; the firewall is
  enforced by the sampling/planning modules taking observation objects,
  never statements' cost callables.

Loops in the source program fold into their statement: a line inside a
``for`` costs its per-iteration work times the trip count, and its
``chunks`` attribute is the number of dynamic instances, which is the
granularity at which the executor posts status updates and can break
for migration ("at the end of the currently executing line", §III-D).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Sequence

from ..errors import ProgramError

#: Cost callables map executed record count -> value.
CostFn = Callable[[float], float]
#: Kernels transform the payload dict (real data at sample scale).
Kernel = Callable[[Dict[str, Any]], Dict[str, Any]]


def constant(value: float) -> CostFn:
    """Cost that does not depend on the input size (e.g. a tiny result)."""
    return lambda n: float(value)


def per_record(amount: float) -> CostFn:
    """Cost proportional to the record count: ``amount * n``."""
    return lambda n: float(amount) * n


def linear(slope: float, intercept: float = 0.0) -> CostFn:
    """Affine cost ``slope * n + intercept``."""
    return lambda n: float(slope) * n + float(intercept)


@dataclass
class Statement:
    """One Python line: a single-entry-single-exit code region.

    Parameters
    ----------
    name:
        Identifier used in plans and reports.
    kernel:
        Real implementation run on sample payloads.
    instructions:
        Ground-truth machine instructions retired when executing this
        line over ``n`` records (all dynamic instances included).
    output_bytes:
        Ground-truth bytes of the value this line passes to the next
        line at scale ``n``.
    storage_bytes:
        Bytes this line streams from stored data at scale ``n`` (zero
        for lines that only consume their predecessor's output).
    chunks:
        Number of dynamic instances (loop iterations / stream blocks);
        the executor can observe, update status, and migrate between
        chunks.
    live_vars:
        Names of the variables still live after this line (from the
        frontend's liveness analysis).  The executor's line-boundary
        checkpoint records them as the locals a resume must cover;
        empty for hand-built programs that never migrate real values.
    """

    name: str
    kernel: Kernel
    instructions: CostFn
    output_bytes: CostFn
    storage_bytes: CostFn = field(default_factory=lambda: constant(0.0))
    chunks: int = 32
    live_vars: tuple = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ProgramError("statement needs a non-empty name")
        if self.chunks < 1:
            raise ProgramError(f"statement {self.name!r} needs chunks >= 1")

    def reads_storage(self, n: float = 1024.0) -> bool:
        """Whether this line accesses stored data (probed at a nominal n)."""
        return self.storage_bytes(n) > 0

    def __repr__(self) -> str:
        return f"Statement(name={self.name!r}, chunks={self.chunks})"


class Program:
    """An ordered sequence of statements over one dataset.

    The value flow is a chain: statement ``i`` consumes the output of
    statement ``i-1`` (the first statement consumes nothing from
    memory; whatever it needs it streams from storage).  This matches
    the paper's observation that ISP cannot exploit arbitrary dataflow —
    every host/CSD boundary in the chain pays a transfer.
    """

    def __init__(self, name: str, statements: Sequence[Statement]) -> None:
        if not statements:
            raise ProgramError(f"program {name!r} needs at least one statement")
        names = [s.name for s in statements]
        if len(set(names)) != len(names):
            raise ProgramError(f"program {name!r} has duplicate statement names")
        self.name = name
        self.statements: tuple = tuple(statements)

    def __len__(self) -> int:
        return len(self.statements)

    def __iter__(self):
        return iter(self.statements)

    def __getitem__(self, index: int) -> Statement:
        return self.statements[index]

    def index_of(self, name: str) -> int:
        for i, statement in enumerate(self.statements):
            if statement.name == name:
                return i
        raise ProgramError(f"program {self.name!r} has no statement named {name!r}")

    def input_bytes(self, index: int, n: float) -> float:
        """Ground-truth memory input of statement ``index`` at scale n."""
        if index == 0:
            return 0.0
        return self.statements[index - 1].output_bytes(n)

    def run_kernels(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Execute every kernel in order on a real payload.

        This is the purely functional path (no simulation): used by
        tests and examples to check that programs compute correct
        results.
        """
        data = payload
        for statement in self.statements:
            data = statement.kernel(data)
            if not isinstance(data, dict):
                raise ProgramError(
                    f"kernel of {statement.name!r} must return a dict, "
                    f"got {type(data).__name__}"
                )
        return data

    def __repr__(self) -> str:
        return f"Program(name={self.name!r}, lines={len(self.statements)})"
