"""Fluent construction of programs and datasets.

The raw :class:`~repro.lang.program.Statement` constructor takes cost
callables; for straight-line streaming programs the builder reads more
like the Python source it models::

    program = (
        ProgramBuilder("wordcount")
        .scan("parse_lines", parse, instr_per_record=45,
              record_bytes=80, out_bytes_per_record=24)
        .line("count_words", count, instr_per_record=12,
              out_bytes_per_record=8)
        .reduce("total", total, instr_per_record=1)
        .build()
    )

``scan`` lines stream stored records; ``line``s transform the previous
value; ``reduce`` emits a constant-size result.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from ..errors import ProgramError
from .dataset import Dataset, PayloadBuilder
from .program import Kernel, Program, Statement, constant, per_record


class ProgramBuilder:
    """Accumulates statements, then builds an immutable Program."""

    def __init__(self, name: str) -> None:
        if not name:
            raise ProgramError("program needs a non-empty name")
        self.name = name
        self._statements: List[Statement] = []

    def scan(
        self,
        name: str,
        kernel: Kernel,
        instr_per_record: float,
        record_bytes: float,
        out_bytes_per_record: float,
        chunks: int = 64,
        passes: float = 1.0,
    ) -> "ProgramBuilder":
        """A line streaming stored records (``passes`` > 1 re-reads)."""
        if record_bytes <= 0:
            raise ProgramError(f"scan {name!r} needs positive record_bytes")
        if passes < 1:
            raise ProgramError(f"scan {name!r} needs passes >= 1")
        self._statements.append(Statement(
            name=name,
            kernel=kernel,
            instructions=per_record(instr_per_record),
            output_bytes=per_record(out_bytes_per_record),
            storage_bytes=per_record(record_bytes * passes),
            chunks=chunks,
        ))
        return self

    def line(
        self,
        name: str,
        kernel: Kernel,
        instr_per_record: float,
        out_bytes_per_record: float,
        chunks: int = 32,
    ) -> "ProgramBuilder":
        """A line consuming the previous line's value from memory."""
        self._statements.append(Statement(
            name=name,
            kernel=kernel,
            instructions=per_record(instr_per_record),
            output_bytes=per_record(out_bytes_per_record),
            chunks=chunks,
        ))
        return self

    def reduce(
        self,
        name: str,
        kernel: Kernel,
        instr_per_record: float,
        out_bytes: float = 24.0,
    ) -> "ProgramBuilder":
        """A terminal reduction producing a constant-size result."""
        self._statements.append(Statement(
            name=name,
            kernel=kernel,
            instructions=per_record(instr_per_record),
            output_bytes=constant(out_bytes),
            chunks=8,
        ))
        return self

    def build(self) -> Program:
        if not self._statements:
            raise ProgramError(f"program {self.name!r} has no lines")
        return Program(self.name, self._statements)


def dataset_of(
    name: str,
    n_records: int,
    record_bytes: float,
    builder: PayloadBuilder,
) -> Dataset:
    """Sibling convenience constructor for the common case."""
    return Dataset(
        name=name, n_records=n_records, record_bytes=record_bytes,
        builder=builder,
    )


def array_dataset(
    name: str,
    arrays: Dict[str, Any],
    record_bytes: float,
) -> Dataset:
    """Wrap in-memory arrays as a (fully materialised) dataset.

    Sampling takes prefixes of the given arrays — handy for tests and
    notebooks where the data already exists.
    """
    import numpy as np

    lengths = {np.asarray(a).shape[0] for a in arrays.values()}
    if len(lengths) != 1:
        raise ProgramError(f"arrays must share a leading dimension, got {lengths}")
    n_records = lengths.pop()

    def builder(n: int, full: int) -> Dict[str, Any]:
        return {key: np.asarray(value)[:n] for key, value in arrays.items()}

    return Dataset(
        name=name, n_records=n_records, record_bytes=record_bytes,
        builder=builder,
    )
