"""Program and dataset model for ActivePy.

A *program* is an ordered list of *statements*; each statement stands
for one line of Python, which the paper uses as the unit of offload
(single-entry-single-exit code region, §III-B).  A *dataset* is a named
collection of records stored on the CSD, able to produce scaled-down
sample inputs for the sampling phase (§III-A).
"""

from .builder import ProgramBuilder, array_dataset, dataset_of
from .checks import ValidationReport, validate_program
from .dataset import Dataset
from .program import Program, Statement, constant, linear, per_record

__all__ = [
    "Dataset",
    "Program",
    "ProgramBuilder",
    "Statement",
    "ValidationReport",
    "array_dataset",
    "constant",
    "dataset_of",
    "linear",
    "per_record",
    "validate_program",
]
