"""Setup shim for environments without the wheel package.

The project metadata lives in pyproject.toml; this file only enables
``pip install -e . --no-use-pep517`` on offline machines where the
PEP 517 editable path (which needs ``wheel``) is unavailable.
"""

from setuptools import setup

setup()
