"""Calibration report: per-workload baseline times and speedups.

Run after touching any workload cost model::

    python tools/calibration_report.py

Prints, for every workload at paper scale: the C-baseline time, the
programmer-directed static ISP speedup, the ActivePy speedup, and the
chosen plans — the raw material behind Figure 4.
"""

from __future__ import annotations

import math

from repro import ActivePy, StaticIspBaseline, get_workload, run_c_baseline, workload_names


def main() -> None:
    rows = []
    for name in workload_names():
        workload = get_workload(name)
        baseline = run_c_baseline(workload.program, workload.dataset)
        static = StaticIspBaseline()
        static_plan = static.tune(workload.program, workload.n_records)
        static_result = static.run(workload.program, workload.dataset, plan=static_plan)
        report = ActivePy().run(workload.program, workload.dataset)
        rows.append((
            name,
            baseline.total_seconds,
            baseline.total_seconds / static_result.total_seconds,
            baseline.total_seconds / report.total_seconds,
            "".join("C" if a == "csd" else "h" for a in static_plan.assignments),
            "".join("C" if a == "csd" else "h" for a in report.plan.assignments),
        ))
        print(
            f"{name:<12} base={baseline.total_seconds:7.2f}s  "
            f"static={rows[-1][2]:5.3f}x  activepy={rows[-1][3]:5.3f}x  "
            f"plan(static)={rows[-1][4]:<8} plan(activepy)={rows[-1][5]}"
        )
    geo_static = math.exp(sum(math.log(r[2]) for r in rows) / len(rows))
    geo_active = math.exp(sum(math.log(r[3]) for r in rows) / len(rows))
    print(f"\ngeomean: static={geo_static:.3f}x  activepy={geo_active:.3f}x "
          f"(paper: 1.33x / 1.34x)")


if __name__ == "__main__":
    main()
