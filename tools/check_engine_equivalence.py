"""Dual-engine equivalence smoke: object vs. array, bit for bit.

Run in CI (and locally after touching ``repro.sim``)::

    python tools/check_engine_equivalence.py

Executes the same work twice — once with ``REPRO_SIM_ENGINE=object``,
once with ``=array`` — and asserts the results match *bit-exactly*:

* every rotation workload at functional scale: run signature
  (program name, per-line names, output digest) and total simulated
  seconds;
* a 12-seed chaos campaign: every per-run outcome summary.

Exit status 0 when the engines agree everywhere, 1 with a diff
otherwise.  The engine is chosen when each ``Simulator`` is
constructed, so flipping the environment variable between phases is
enough — no subprocesses needed.
"""

from __future__ import annotations

import os
import sys

CHAOS_RUNS = 12
CHAOS_SEED = 20230423
SCALE = 2 ** -6
ENGINES = ("object", "array")


def run_rotation(engine: str) -> dict:
    from repro.chaos.invariants import run_signature
    from repro.config import SystemConfig
    from repro.runtime.activepy import ActivePy
    from repro.workloads import get_workload, workload_names

    os.environ["REPRO_SIM_ENGINE"] = engine
    results = {}
    for name in workload_names():
        workload = get_workload(name, scale=SCALE)
        report = ActivePy(SystemConfig()).run(workload.program, workload.dataset)
        results[name] = (run_signature(report), report.total_seconds)
    return results


def run_chaos(engine: str) -> list:
    from repro.chaos import CampaignConfig, run_campaign

    os.environ["REPRO_SIM_ENGINE"] = engine
    result = run_campaign(
        CampaignConfig(
            runs=CHAOS_RUNS,
            scale=SCALE,
            base_seed=CHAOS_SEED,
            collect_metrics=False,
        )
    )
    return [outcome.summary() for outcome in result.outcomes]


def diff_keys(label: str, left: dict, right: dict) -> list:
    problems = []
    for key in left:
        if left[key] != right[key]:
            problems.append(
                f"{label}[{key}] diverges:\n  object: {left[key]!r}\n  array:  {right[key]!r}"
            )
    return problems


def main() -> int:
    rotation = {engine: run_rotation(engine) for engine in ENGINES}
    chaos = {engine: run_chaos(engine) for engine in ENGINES}

    problems = diff_keys("rotation", rotation["object"], rotation["array"])
    for index, (obj, arr) in enumerate(zip(chaos["object"], chaos["array"])):
        if obj != arr:
            problems.append(
                f"chaos run {index} diverges:\n  object: {obj!r}\n  array:  {arr!r}"
            )

    workloads = len(rotation["object"])
    if problems:
        print(f"ENGINE EQUIVALENCE FAILED ({len(problems)} divergence(s)):")
        for problem in problems:
            print(problem)
        return 1
    print(
        f"engine equivalence OK: {workloads} rotation workload(s) and "
        f"{CHAOS_RUNS} chaos seed(s) bit-identical under "
        f"REPRO_SIM_ENGINE=object and =array"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
