#!/usr/bin/env python3
"""In-storage analytics: the TPC-H trio with and without ActivePy.

Reproduces the motivation of the paper's §II in miniature: a statically
optimised C ISP configuration is fast while the device is idle and
collapses when a co-tenant takes the engine; ActivePy reacts.

Run::

    python examples/tpch_analytics.py
"""

from repro import ActivePy, StaticIspBaseline, build_machine, get_workload, run_c_baseline
from repro.units import format_seconds
from repro.workloads.tpch.queries import q1_reference, q6_reference, summarize

QUERIES = ("tpch_q1", "tpch_q6", "tpch_q14")


def run_comparison() -> None:
    print("=== speedups over the no-ISP C baseline (dedicated CSD) ===")
    for name in QUERIES:
        workload = get_workload(name)
        baseline = run_c_baseline(workload.program, workload.dataset)
        static = StaticIspBaseline()
        static_result = static.run(workload.program, workload.dataset)
        report = ActivePy().run(workload.program, workload.dataset)
        print(
            f"{name:<9} baseline {format_seconds(baseline.total_seconds):>8}   "
            f"static ISP {baseline.total_seconds / static_result.total_seconds:.2f}x   "
            f"ActivePy {baseline.total_seconds / report.total_seconds:.2f}x"
        )


def run_contention_story() -> None:
    print("\n=== the same plans when a co-tenant takes 90% of the CSE ===")
    for name in QUERIES:
        workload = get_workload(name)
        baseline = run_c_baseline(workload.program, workload.dataset)

        static = StaticIspBaseline()
        plan = static.tune(workload.program, workload.n_records)
        machine = build_machine()
        machine.csd.cse.set_availability(0.1)
        stranded = static.run(workload.program, workload.dataset,
                              machine=machine, plan=plan)

        adaptive_machine = build_machine()
        adaptive = ActivePy().run(
            workload.program, workload.dataset, machine=adaptive_machine,
            progress_triggers=[(0.5, 0.1)],
        )
        migrated = "migrated" if adaptive.result.migrated else "stayed"
        print(
            f"{name:<9} static ISP "
            f"{baseline.total_seconds / stranded.total_seconds:.2f}x   "
            f"ActivePy {baseline.total_seconds / adaptive.total_seconds:.2f}x "
            f"({migrated})"
        )


def run_query_answers() -> None:
    print("\n=== the queries really compute (reduced-scale data) ===")
    q1 = get_workload("tpch_q1", scale=2**-11)
    print("\nQ1 pricing summary:")
    print(summarize(q1_reference(q1.dataset.payload)))

    q6 = get_workload("tpch_q6", scale=2**-11)
    revenue = q6_reference(q6.dataset.payload)
    print(f"\nQ6 forecast revenue change: {revenue:,.2f}")

    q14 = get_workload("tpch_q14", scale=2**-11)
    result = q14.program.run_kernels(q14.dataset.payload)
    print(f"Q14 promo revenue share:    {result['promo_revenue_pct']:.2f}%")


def main() -> None:
    run_comparison()
    run_contention_story()
    run_query_answers()


if __name__ == "__main__":
    main()
