#!/usr/bin/env python3
"""Quickstart: run an unannotated program through ActivePy.

The program below is plain Python over a stored option book — no
pragmas, no hints, no mention of the storage device.  ActivePy samples
it, fits per-line cost curves, decides which lines the computational
storage device should run (the paper's Algorithm 1), generates code for
both sides, and executes on the simulated platform.

Run::

    python examples/quickstart.py
"""

from repro import ActivePy, get_workload, run_c_baseline
from repro.units import format_bytes, format_seconds


def main() -> None:
    # Any Table-I application works; blackscholes is the classic
    # streaming example.  (Use scale=1.0 for the paper-sized input.)
    workload = get_workload("blackscholes")
    print(f"workload : {workload.name} — {workload.description}")
    print(f"input    : {format_bytes(workload.raw_bytes)} "
          f"({workload.n_records:,} records) resident on the CSD")
    print(f"program  : {len(workload.program)} lines "
          f"({', '.join(s.name for s in workload.program)})")

    # The baseline the paper normalises everything to: the equivalent
    # hand-written C application, host only.
    baseline = run_c_baseline(workload.program, workload.dataset)
    print(f"\nC baseline (no ISP)      : {format_seconds(baseline.total_seconds)}")

    # ActivePy end to end: sampling -> fitting -> Algorithm 1 ->
    # code generation -> monitored execution.
    report = ActivePy().run(workload.program, workload.dataset)
    print(f"ActivePy (automatic ISP) : {format_seconds(report.total_seconds)}")
    print(f"speedup                  : "
          f"{baseline.total_seconds / report.total_seconds:.2f}x")

    print("\nplan chosen by Algorithm 1 (no programmer hints):")
    for statement, where in zip(workload.program, report.plan.assignments):
        print(f"  {statement.name:<16} -> {where}")
    print(f"\nsampling + codegen overhead: "
          f"{format_seconds(report.overhead_seconds)} "
          f"(the paper reports ~0.1 s)")

    # The functional face: the same program computes real results.
    small = get_workload("blackscholes", scale=2**-12)
    result = small.program.run_kernels(small.dataset.payload)
    print(f"\nfunctional check at small scale: mean option price = "
          f"{result['mean_price']:.4f}")


if __name__ == "__main__":
    main()
