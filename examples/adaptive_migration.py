#!/usr/bin/env python3
"""Watching a migration happen, step by step.

A KMeans job offloads its Lloyd loop to the CSD; halfway through, a
co-tenant takes 90% of the engine.  The status updates flowing through
the completion queue show the IPC collapse, the monitor re-estimates,
and the task breaks at a line boundary and finishes on the host.

Run::

    python examples/adaptive_migration.py
"""

from repro import ActivePy, build_machine, get_workload, run_c_baseline
from repro.units import format_seconds


def run_scenario(migration_enabled: bool):
    workload = get_workload("kmeans")
    machine = build_machine()
    runtime = ActivePy(migration_enabled=migration_enabled)
    report = runtime.run(
        workload.program, workload.dataset, machine=machine,
        progress_triggers=[(0.5, 0.1)],  # stress at 50% ISP progress
    )
    return report


def main() -> None:
    workload = get_workload("kmeans")
    baseline = run_c_baseline(workload.program, workload.dataset)
    print(f"no-ISP baseline: {format_seconds(baseline.total_seconds)}")

    stranded = run_scenario(migration_enabled=False)
    print(f"\nActivePy w/o migration under stress: "
          f"{format_seconds(stranded.total_seconds)} "
          f"({baseline.total_seconds / stranded.total_seconds:.2f}x vs baseline)")
    print("the static assignment is stuck on a 10%-available engine.")

    adaptive = run_scenario(migration_enabled=True)
    print(f"\nfull ActivePy under the same stress:  "
          f"{format_seconds(adaptive.total_seconds)} "
          f"({baseline.total_seconds / adaptive.total_seconds:.2f}x vs baseline)")

    for event in adaptive.result.migrations:
        print(f"\nmigration at sim time {format_seconds(event.sim_time)}:")
        print(f"  line            : {event.line_name} "
              f"(dynamic instance {event.chunk})")
        print(f"  trigger         : {event.reason}")
        print(f"  staying costs   : "
              f"{format_seconds(event.projected_device_seconds)} (re-estimated)")
        print(f"  migrating costs : "
              f"{format_seconds(event.projected_host_seconds)} "
              f"(regen + state save + host finish)")
        print(f"  migration cost  : {format_seconds(event.cost_seconds)}")

    print("\nper-line outcome:")
    for timing in adaptive.result.line_timings:
        note = " (migrated mid-line)" if timing.migrated_mid_line else ""
        print(f"  {timing.name:<18} planned {timing.planned_location:<5} "
              f"ran {timing.actual_location:<5} "
              f"{format_seconds(timing.seconds)}{note}")

    gain = stranded.total_seconds / adaptive.total_seconds
    print(f"\nmigration gain: {gain:.2f}x "
          f"(the paper reports 2.82x at 10% availability)")


if __name__ == "__main__":
    main()
