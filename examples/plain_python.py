#!/usr/bin/env python3
"""The paper's headline promise, end to end: plain Python in, ISP out.

``trading_summary`` below is an ordinary function — no pragmas, no
device code, no mention of storage.  The frontend lowers it to a line
program (one Python line = one single-entry-single-exit region, exactly
the granularity the paper plans at), ActivePy samples and plans it, and
the volume-reducing lines land on the CSD.

Run::

    python examples/plain_python.py
"""

import numpy as np

from repro import ActivePy, run_c_baseline
from repro.frontend import program_from_function
from repro.lang.dataset import Dataset
from repro.units import format_seconds


def trading_summary(prices, volumes):
    """An unannotated analytics function over two stored columns."""
    notional = (prices * volumes).astype(np.float32)
    active = notional[volumes > 150.0]
    return float(np.sum(active))


def tick_payload(n: int, full: int = 0) -> dict:
    rng = np.random.default_rng(47)
    return {
        "prices": rng.uniform(5.0, 500.0, size=n),
        "volumes": rng.uniform(0.0, 400.0, size=n),
    }


def main() -> None:
    print("source:")
    import inspect

    for line in inspect.getsource(trading_summary).splitlines():
        print(f"    {line}")

    program = program_from_function(
        trading_summary,
        record_bytes=16.0,                      # two f64 columns
        probe_payload=tick_payload(8192),       # measure real volumes
        instr_hints={                           # calibrated densities
            "L0_notional": 12.0, "L1_active": 12.0, "L2_return": 4.0,
        },
    )
    print("\nlowered to lines:")
    for statement in program:
        print(f"    {statement.name:<14} "
              f"storage {statement.storage_bytes(1):>5.1f} B/rec   "
              f"out {statement.output_bytes(1):>8.1f} B/rec")

    dataset = Dataset(
        "ticks", n_records=400_000_000, record_bytes=16.0,
        builder=tick_payload,
    )  # 6.4 GB of stored ticks

    baseline = run_c_baseline(program, dataset)
    report = ActivePy().run(program, dataset)
    print(f"\nC baseline : {format_seconds(baseline.total_seconds)}")
    print(f"ActivePy   : {format_seconds(report.total_seconds)} "
          f"({baseline.total_seconds / report.total_seconds:.2f}x)")
    print("plan       : " + ", ".join(
        f"{statement.name}->{where}"
        for statement, where in zip(program, report.plan.assignments)
    ))

    # And the function still computes the same answer.
    probe = tick_payload(100_000)
    direct = trading_summary(probe["prices"], probe["volumes"])
    via_program = program.run_kernels(dict(probe))["__result__"]
    print(f"\nfunctional check: direct={direct:,.2f} via-program={via_program:,.2f}")


if __name__ == "__main__":
    main()
