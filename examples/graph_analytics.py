#!/usr/bin/env python3
"""Graph analytics on a CSD: PageRank and the CSR prediction story.

Shows the one place ActivePy's sampling is systematically wrong —
estimating the size of a CSR structure from a biased prefix sample of
a power-law edge list — and why the paper argues the error is benign:
the volume is always over-estimated, so ActivePy errs toward the host
and never loses to its own conservatism.

Run::

    python examples/graph_analytics.py
"""

from repro import ActivePy, StaticIspBaseline, get_workload, run_c_baseline
from repro.runtime.profiler import payload_nbytes
from repro.units import format_bytes, format_seconds


def show_sampling_bias() -> None:
    workload = get_workload("pagerank")
    program = workload.program
    csr_line = program.index_of("build_csr")

    print("=== why the CSR estimate is biased ===")
    print("sample    measured CSR bytes   bytes/edge")
    for factor in (2**-10, 2**-9, 2**-8, 2**-7):
        sample = workload.dataset.sample(factor)
        payload = sample.payload
        for statement in program.statements[: csr_line + 1]:
            payload = statement.kernel(payload)
        measured = payload_nbytes(payload)
        print(f"2^{factor.as_integer_ratio()[1].bit_length() - 1:>3}   "
              f"{format_bytes(measured):>18}   {measured / sample.n_records:8.1f}")
    true_bytes = program[csr_line].output_bytes(workload.n_records)
    print(f"population ground truth: {format_bytes(true_bytes)} "
          f"({true_bytes / workload.n_records:.1f} bytes/edge)")
    print("a stored edge list is fringe-first, so prefix samples see ~1\n"
          "distinct vertex per edge while the population averages 8 —\n"
          "the fitted curve over-extrapolates the CSR footprint ~2.4x.\n")


def run_pagerank() -> None:
    print("=== PageRank end to end ===")
    workload = get_workload("pagerank")
    baseline = run_c_baseline(workload.program, workload.dataset)
    report = ActivePy().run(workload.program, workload.dataset)
    oracle_plan = StaticIspBaseline().tune(workload.program, workload.n_records)

    print(f"baseline {format_seconds(baseline.total_seconds)}, "
          f"ActivePy {format_seconds(report.total_seconds)} "
          f"({baseline.total_seconds / report.total_seconds:.2f}x)")
    print("\nline              ActivePy   oracle")
    for statement, mine, oracle in zip(
        workload.program, report.plan.assignments, oracle_plan.assignments
    ):
        marker = "  <- conservative (over-estimated CSR)" if mine != oracle else ""
        print(f"{statement.name:<16}  {mine:<8}   {oracle}{marker}")

    small = get_workload("pagerank", scale=2**-12)
    result = small.program.run_kernels(small.dataset.payload)
    print(f"\nfunctional check: ranks sum to {result['rank_sum']:.6f}, "
          f"top rank {result['top_rank']:.2e}")


def run_sparsemv() -> None:
    print("\n=== SparseMV (weighted CSR: milder bias) ===")
    workload = get_workload("sparsemv")
    baseline = run_c_baseline(workload.program, workload.dataset)
    report = ActivePy().run(workload.program, workload.dataset)
    print(f"baseline {format_seconds(baseline.total_seconds)}, "
          f"ActivePy {format_seconds(report.total_seconds)} "
          f"({baseline.total_seconds / report.total_seconds:.2f}x)")


def main() -> None:
    show_sampling_bias()
    run_pagerank()
    run_sparsemv()


if __name__ == "__main__":
    main()
