#!/usr/bin/env python3
"""When does in-storage processing pay off?  (Equation 1, hands on.)

Builds a custom streaming program with the fluent API, inspects its
Equation-1 region profits, then sweeps the platform parameters that
govern the trade-off: compute density, host storage bandwidth, and CSE
speed.  This is the paper's §II analysis reproduced as an executable
notebook.

Run::

    python examples/when_does_isp_pay.py
"""

import numpy as np

from repro import ActivePy, run_c_baseline
from repro.analysis.sweep import activepy_speedup_metric, sweep_config
from repro.baselines import ground_truth_estimates
from repro.config import DEFAULT_CONFIG
from repro.lang.builder import ProgramBuilder, dataset_of
from repro.runtime.estimator import region_profits
from repro.units import GB


def make_program(instr_per_record: float):
    """A single scan that reduces 64 B records to 8 B values."""

    def k_scan(payload):
        return {"v": payload["raw"] * 2.0}

    def k_sum(payload):
        return {"total": float(np.sum(payload["v"]))}

    return (
        ProgramBuilder(f"scan{instr_per_record:.0f}")
        .scan("scan", k_scan, instr_per_record=instr_per_record,
              record_bytes=64, out_bytes_per_record=8)
        .reduce("sum", k_sum, instr_per_record=1)
        .build()
    )


def make_dataset(name: str):
    return dataset_of(
        name, n_records=50_000_000, record_bytes=64.0,
        builder=lambda n, full: {"raw": np.ones(n)},
    )


def compute_density_story() -> None:
    print("=== Equation 1 vs compute density ===")
    print("(64 B records reduced to 8 B; CSE is 2x slower than the host)")
    print(f"{'instr/record':>13} {'instr/byte':>11} {'Eq.1 profit':>12} "
          f"{'measured speedup':>17}")
    for instr in (32.0, 96.0, 160.0, 256.0, 384.0):
        program = make_program(instr)
        dataset = make_dataset(f"density{instr:.0f}")
        estimates = ground_truth_estimates(
            program, dataset.n_records, DEFAULT_CONFIG
        )
        whole = [p for p in region_profits(estimates, DEFAULT_CONFIG)
                 if (p.first_line, p.last_line) == (0, len(estimates) - 1)][0]
        baseline = run_c_baseline(program, dataset)
        report = ActivePy().run(program, make_dataset(f"density{instr:.0f}"))
        print(f"{instr:>13.0f} {instr / 64:>11.2f} {whole.profit_seconds:>11.2f}s "
              f"{baseline.total_seconds / report.total_seconds:>16.2f}x")
    print("profit shrinks as compute density grows; past the break-even\n"
          "(~4 instr/byte here) ActivePy simply stops offloading.  (The\n"
          "Eq.1 column uses the paper's idealised BW_D2H form, which is\n"
          "conservative on this platform: the host's real storage path\n"
          "is narrower than the NVMe link, so measured wins are larger.)\n")


def bandwidth_story() -> None:
    print("=== the host storage path is what ISP lives off ===")
    sweep = sweep_config(
        "bw_host_storage", [0.8 * GB, 1.6 * GB, 3.2 * GB, 6.4 * GB],
        metric=activepy_speedup_metric("tpch_q6"),
    )
    for value, metric in zip(sweep.values, sweep.metrics):
        print(f"  host path {value / GB:4.1f} GB/s -> TPC-H-6 speedup {metric:.2f}x")
    print()


def cse_speed_story() -> None:
    print("=== and a faster CSE widens every margin ===")
    sweep = sweep_config(
        "cse_ips", [2e9, 4e9, 8e9],
        metric=activepy_speedup_metric("tpch_q6"),
    )
    for value, metric in zip(sweep.values, sweep.metrics):
        print(f"  CSE {value / 1e9:.0f} GIPS -> TPC-H-6 speedup {metric:.2f}x")


def main() -> None:
    compute_density_story()
    bandwidth_story()
    cse_speed_story()


if __name__ == "__main__":
    main()
