#!/usr/bin/env python3
"""Multi-tenant devices: co-tenant bursts and placement isolation.

Two stories the paper's system-dynamics argument (§II-B3) implies:

1. a co-tenant's periodic bursts on the CSE look exactly like the
   Figure 5 stress, and ActivePy's monitor handles them unprompted;
2. with several CSDs attached, placement matters — a program whose
   dataset lives on a healthy device is untouched by a noisy neighbour
   on another one.

Run::

    python examples/multi_tenant.py
"""

from repro import ActivePy, build_machine, get_workload, run_c_baseline
from repro.storage import BackgroundLoad
from repro.units import format_seconds


def run_with_cotenant() -> None:
    print("=== a co-tenant bursts onto the CSE mid-run ===")
    workload = get_workload("kmeans")
    baseline = run_c_baseline(workload.program, workload.dataset)
    print(f"no-ISP baseline: {format_seconds(baseline.total_seconds)}")

    machine = build_machine()
    load = BackgroundLoad(
        machine.csd.cse,
        period_s=30.0,
        busy_fraction=0.8,          # the tenant holds the engine 80% of the time
        available_during=0.1,       # leaving us 10% while it runs
        start_at=8.0,               # it arrives mid-run
    ).start()
    report = ActivePy().run(
        workload.program, workload.dataset, machine=machine, trace=True
    )
    print(f"ActivePy under tenant bursts: "
          f"{format_seconds(report.total_seconds)} "
          f"({baseline.total_seconds / report.total_seconds:.2f}x vs baseline, "
          f"{len(report.result.migrations)} migration(s), "
          f"{load.bursts_started} burst(s))")
    print()
    print(report.timeline.render(width=60))


def run_placement_isolation() -> None:
    print("\n=== two CSDs: the noisy neighbour stays on its device ===")
    workload = get_workload("tpch_q6")
    baseline = run_c_baseline(workload.program, workload.dataset)

    machine = build_machine(num_csds=2)
    # Our query's lineitem table lives on the second device ...
    machine.csds[1].store_dataset(workload.dataset.name, workload.raw_bytes)
    # ... while a co-tenant hammers the first.
    machine.csds[0].cse.set_availability(0.05)

    report = ActivePy().run(workload.program, workload.dataset, machine=machine)
    print(f"query on csd1 while csd0 is 95% busy: "
          f"{format_seconds(report.total_seconds)} "
          f"({baseline.total_seconds / report.total_seconds:.2f}x vs baseline, "
          f"{len(report.result.migrations)} migrations)")
    print(f"csd0 retired {machine.csds[0].cse.counters.retired_instructions:.0f} "
          f"foreground instructions; csd1 retired "
          f"{machine.csds[1].cse.counters.retired_instructions:.3g}")


def main() -> None:
    run_with_cotenant()
    run_placement_isolation()


if __name__ == "__main__":
    main()
